/**
 * @file
 * End-to-end Seq2Graph mapping pipelines (paper Figure 1) and the
 * Seq2Seq baseline.
 *
 * One mapper class drives the four tool profiles the paper analyzes;
 * each profile allocates its effort across the seed / cluster-chain /
 * filter / align stages exactly as the paper characterizes (Figure 2):
 *
 *  - VgMap:        effort spread across stages, GSSW alignment
 *  - VgGiraffe:    heavyweight GBWT haplotype filtering, light align
 *  - GraphAligner: minimal clustering, GBV dominates in alignment
 *  - Minigraph:    chaining with a 2-D DP whose gap bridging is the
 *                  GWFA kernel; final base-level WFA
 *
 * Per-stage time is accumulated in StageTimers; the contained kernel's
 * share of its stage (Figure 2's yellow arcs) is tracked separately.
 */

#ifndef PGB_PIPELINE_MAPPER_HPP
#define PGB_PIPELINE_MAPPER_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/timer.hpp"
#include "graph/pangraph.hpp"
#include "index/gbwt.hpp"
#include "index/minimizer.hpp"
#include "pipeline/chain.hpp"
#include "pipeline/context.hpp"
#include "seq/sequence.hpp"

namespace pgb::pipeline {

/** The four Seq2Graph tools of the paper. */
enum class ToolProfile
{
    kVgMap,
    kVgGiraffe,
    kGraphAligner,
    kMinigraph,
};

/** Printable tool name. */
const char *toolName(ToolProfile profile);

/** Mapper configuration. */
struct MapperConfig
{
    ToolProfile profile = ToolProfile::kVgMap;
    int k = 15;
    int w = 10;
    unsigned threads = 1;
    /** Clusters/chains forwarded to alignment (filtering strength). */
    size_t maxAlignments = 2;
    /** Subgraph radius around a seed, as a multiple of read length. */
    double radiusFactor = 1.2;
    /** Minimum anchors for a cluster to survive. */
    size_t minClusterAnchors = 2;
    /** GBWT extension depth for the giraffe filter. */
    size_t gbwtExtensionSteps = 16;
    /** Gap (bases) between chained anchors that triggers GWFA. */
    uint64_t gwfaGapThreshold = 16;
    /** GBV score band (GraphAligner profile); 0 = exact. */
    int32_t gbvBand = 0;
    /**
     * Context expansion around a cluster, in *node steps* (vg's
     * context depth): the extracted subgraph spans the cluster's
     * anchors plus contextSteps nodes of flank. Step-granular context
     * is why finer-node graphs yield smaller subgraphs (the paper's
     * §6.2 Split-M-graph effect).
     */
    uint32_t contextSteps = 6;

    /**
     * Per-tool defaults reflecting each tool's accuracy/performance
     * trade-off (paper §2.1): vg map aligns many candidates with full
     * matrices; giraffe extends a single haplotype-filtered candidate
     * cheaply; GraphAligner aligns one cluster but with the expensive
     * full-width bit-vector DP.
     */
    static MapperConfig forTool(ToolProfile tool);
};

/** Mapping outcome for one read. */
struct ReadMapping
{
    bool mapped = false;
    int32_t score = 0;
    uint32_t node = 0;
    bool reverse = false;
};

/** Aggregate statistics for a batch (Figure 2's inputs). */
struct MappingStats
{
    core::StageTimers timers; ///< seed / cluster_chain / filter / align
    double kernelSeconds = 0.0; ///< the extracted kernel's share
    const char *kernelName = "";
    uint64_t reads = 0;
    uint64_t mappedReads = 0;
    uint64_t anchors = 0;
    uint64_t clusters = 0;
    uint64_t alignments = 0;
};

/** Captured GSSW kernel inputs (the paper's Table 3 trace datasets). */
struct GsswTrace
{
    graph::LocalGraph subgraph;
    std::vector<uint8_t> query;
};

/** Captured GBV kernel inputs. */
using GbvTrace = GsswTrace;

/** Captured GWFA kernel inputs. */
struct GwfaTrace
{
    graph::LocalGraph subgraph;
    std::vector<uint8_t> query;
    uint32_t startNode = 0;
};

/**
 * Seq2Graph mapping pipeline over a pangenome graph.
 *
 * The mapper itself is a thin per-run object: all shared immutable
 * state (graph, indexes, linearization) lives in a MappingContext.
 * The graph+config constructor keeps the historical build-per-mapper
 * behavior; the context constructors map against prebuilt (or
 * artifact-loaded) state without paying index construction.
 */
class Seq2GraphMapper
{
  public:
    /**
     * Legacy one-shot form: builds a private MappingContext from
     * @p graph using config.k/w/threads (plus a GBWT for the giraffe
     * profile). Equivalent to build() + the context constructor.
     */
    Seq2GraphMapper(const graph::PanGraph &graph, MapperConfig config);

    /**
     * Build-once/map-many form: share @p context across runs. The
     * giraffe profile requires a context carrying a GBWT, and
     * config.k/w must match the context's index (both fatal()).
     */
    Seq2GraphMapper(std::shared_ptr<const MappingContext> context,
                    MapperConfig config);

    /** Non-owning context form (caller keeps @p context alive). */
    Seq2GraphMapper(const MappingContext &context, MapperConfig config);

    /** Map a batch of reads (thread-parallel over reads). */
    MappingStats mapReads(std::span<const seq::Sequence> reads) const;

    /**
     * mapReads, also collecting the per-read outcome: @p mappings is
     * resized to reads.size() and mappings[i] is read i's result, so
     * the order is input order at every thread count — the serving
     * layer's response records and the golden digests rely on that.
     */
    MappingStats mapReads(std::span<const seq::Sequence> reads,
                          std::vector<ReadMapping> *mappings) const;

    /** Map one read; stage times charged to @p stats. */
    ReadMapping mapOne(const seq::Sequence &read,
                       MappingStats &stats) const;

    /**
     * Run the pipeline up to the alignment stage and record the kernel
     * inputs instead of aligning (the paper's dataset-capture method,
     * §4.2): GSSW/GBV subgraph+query traces.
     */
    std::vector<GsswTrace>
    captureAlignTraces(std::span<const seq::Sequence> reads,
                       size_t max_traces) const;

    /** Capture GWFA gap-bridging traces (minigraph profile). */
    std::vector<GwfaTrace>
    captureGwfaTraces(std::span<const seq::Sequence> reads,
                      size_t max_traces) const;

    /** Monolith-only convenience accessors (fatal on a shard set). */
    const index::MinimizerIndex &minimizerIndex() const
    {
        return context_->minimizers();
    }
    const index::GbwtIndex *gbwt() const { return context_->gbwt(); }
    const MapperConfig &config() const { return config_; }
    const MappingContext &context() const { return *context_; }

  private:
    struct AlignTask
    {
        graph::Handle seedHandle;
        uint32_t seedOffset = 0;
        bool reverse = false;
        /** Query offset (on the aligned strand) of the seed node's
         *  start; minigraph's query-global GWFA starts here. */
        uint32_t queryStart = 0;
        uint64_t linearLo = 0, linearHi = 0;
    };

    /** Seed + cluster/chain + filter; emits alignment tasks. */
    std::vector<AlignTask> planAlignments(const seq::Sequence &read,
                                          MappingStats &stats) const;

    /** Extraction radius for an alignment task (see contextSteps). */
    size_t taskRadius(const AlignTask &task, size_t read_length) const;

    /** Validate profile/parameter compatibility with the context. */
    void checkContext() const;

    /** The read-side source every stage goes through: monolith or
     *  shard set, same call shapes (node ids are global). */
    const GraphSource &source() const { return context_->source(); }

    std::shared_ptr<const MappingContext> owned_; ///< may be null
    const MappingContext *context_;
    MapperConfig config_;
};

/** BWA-MEM2-like Seq2Seq baseline (Table 1's last column). */
class Seq2SeqMapper
{
  public:
    Seq2SeqMapper(const seq::Sequence &reference, int k, int w);

    MappingStats mapReads(std::span<const seq::Sequence> reads,
                          unsigned threads) const;

    /** Capture SSW traces (reference windows + reads) for §6.1. */
    struct SswTrace
    {
        std::vector<uint8_t> query;
        std::vector<uint8_t> window;
    };
    std::vector<SswTrace>
    captureSswTraces(std::span<const seq::Sequence> reads,
                     size_t max_traces) const;

  private:
    struct Window
    {
        bool found = false;
        uint64_t begin = 0, end = 0;
        bool reverse = false;
    };
    Window bestWindow(const seq::Sequence &read,
                      MappingStats *stats) const;

    const seq::Sequence &reference_;
    int k_, w_;
    std::unordered_map<uint64_t, std::vector<uint32_t>> table_;
};

} // namespace pgb::pipeline

#endif // PGB_PIPELINE_MAPPER_HPP
