/**
 * @file
 * Thread-scaling measurement harness (paper Figure 5).
 *
 * Wall-times a tool closure at each requested thread count and reports
 * speedups relative to the first point (the paper normalizes to 4
 * threads).
 */

#ifndef PGB_PIPELINE_SCALING_HPP
#define PGB_PIPELINE_SCALING_HPP

#include <functional>
#include <span>
#include <string>
#include <vector>

namespace pgb::pipeline {

/** One measured point of a scaling curve. */
struct ScalingPoint
{
    unsigned threads = 0;
    double seconds = 0.0;
    double speedup = 1.0; ///< relative to the first point
};

/** A tool's scaling curve. */
struct ScalingSeries
{
    std::string tool;
    std::vector<ScalingPoint> points;
};

/**
 * Run @p body(threads) once per entry of @p thread_counts, wall-timing
 * each run.
 */
ScalingSeries measureScaling(std::string tool,
                             std::span<const unsigned> thread_counts,
                             const std::function<void(unsigned)> &body);

} // namespace pgb::pipeline

#endif // PGB_PIPELINE_SCALING_HPP
