/**
 * @file
 * Seed anchoring, clustering, and chaining for the Seq2Graph mapping
 * pipelines (paper Figure 1, steps 2-3).
 *
 * Anchors pair a query k-mer position with a graph occurrence.
 * Clustering groups anchors whose graph/query offsets agree (the cheap
 * locality heuristic of vg map / GraphAligner); chaining runs the
 * minigraph-style 2-D dynamic program that scores colinear anchor
 * subsets with gap costs, where graph distances come from the node
 * linearization (minigraph linearizes its reference graph the same
 * way).
 */

#ifndef PGB_PIPELINE_CHAIN_HPP
#define PGB_PIPELINE_CHAIN_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "graph/pangraph.hpp"
#include "index/minimizer.hpp"
#include "seq/sequence.hpp"

namespace pgb::pipeline {

/** A seed anchor: query position matched to a graph position. */
struct Anchor
{
    uint32_t queryPos = 0;
    uint32_t node = 0;
    uint32_t nodeOffset = 0;
    bool reverse = false;  ///< anchor is on the read's reverse strand
    uint64_t linearPos = 0;///< linearized graph coordinate of the hit
};

/** Pseudo-linear coordinates for graph nodes (by id-order prefix sum). */
class GraphLinearization
{
  public:
    explicit GraphLinearization(const graph::PanGraph &graph);

    uint64_t
    offsetOf(uint32_t node, uint32_t node_offset) const
    {
        return prefix_[node] + node_offset;
    }

    uint64_t totalBases() const { return total_; }

  private:
    std::vector<uint64_t> prefix_;
    uint64_t total_ = 0;
};

/**
 * Collect anchors for @p read (both strands) into @p anchors (cleared
 * first, capacity reused). Minimizer and window temporaries live in
 * thread-local scratch — the per-read hot path allocates nothing once
 * warm.
 */
void collectAnchorsInto(const seq::Sequence &read,
                        const index::MinimizerIndex &index,
                        const GraphLinearization &linear,
                        std::vector<Anchor> &anchors,
                        size_t max_occurrences = 64);

/** Returning variant of collectAnchorsInto. */
std::vector<Anchor> collectAnchors(const seq::Sequence &read,
                                   const index::MinimizerIndex &index,
                                   const GraphLinearization &linear,
                                   size_t max_occurrences = 64);

/** A cluster/chain of anchors with a score. */
struct AnchorChain
{
    std::vector<uint32_t> anchorIds; ///< indices into the anchor array
    int64_t score = 0;
    bool reverse = false;
};

/**
 * Cheap diagonal clustering: bucket anchors by strand and
 * (linearPos - queryPos) band, score = anchor count. Writes into
 * @p clusters (cleared first); the bucket table is thread-local.
 */
void clusterAnchorsInto(std::span<const Anchor> anchors,
                        uint64_t band_width,
                        std::vector<AnchorChain> &clusters);

/** Returning variant of clusterAnchorsInto. */
std::vector<AnchorChain> clusterAnchors(std::span<const Anchor> anchors,
                                        uint64_t band_width = 128);

/** Chaining parameters (minigraph-style). */
struct ChainParams
{
    int64_t matchBonus = 8;     ///< per anchor
    int64_t gapScale = 1;       ///< per base of gap cost (divided by 8)
    uint64_t maxGap = 5000;     ///< max bridgeable gap
    size_t maxLookback = 64;    ///< DP predecessors considered
};

/**
 * Minigraph's 2-D chaining DP over anchors (sorted internally); the
 * stage GWFA was extracted from. Writes chains best-first into
 * @p chains (cleared first); the DP arrays are thread-local.
 */
void chainAnchorsInto(std::span<const Anchor> anchors,
                      const ChainParams &params,
                      std::vector<AnchorChain> &chains);

/** Returning variant of chainAnchorsInto. */
std::vector<AnchorChain> chainAnchors(std::span<const Anchor> anchors,
                                      const ChainParams &params);

} // namespace pgb::pipeline

#endif // PGB_PIPELINE_CHAIN_HPP
