#include "pipeline/chain.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/scratch.hpp"
#include "obs/metrics.hpp"

namespace pgb::pipeline {

namespace {

obs::Counter obsChainDpAnchors("chain.dp_anchors");

/**
 * Thread-local buffers of the seed/cluster/chain stages. Cleared (not
 * freed) per read, so the steady-state hot path never mallocs.
 */
struct ChainScratch
{
    std::vector<index::Minimizer> minimizers;
    std::unordered_map<uint64_t, AnchorChain> buckets;
    std::vector<uint32_t> order;
    std::vector<int64_t> dp;
    std::vector<int64_t> parent;
    std::vector<size_t> byScore;
    std::vector<char> used;
};

} // namespace

GraphLinearization::GraphLinearization(const graph::PanGraph &graph)
{
    prefix_.resize(graph.nodeCount());
    uint64_t running = 0;
    for (graph::NodeId node = 0; node < graph.nodeCount(); ++node) {
        prefix_[node] = running;
        running += graph.nodeLength(node);
    }
    total_ = running;
}

void
collectAnchorsInto(const seq::Sequence &read,
                   const index::MinimizerIndex &index,
                   const GraphLinearization &linear,
                   std::vector<Anchor> &anchors, size_t max_occurrences)
{
    anchors.clear();
    std::vector<index::Minimizer> &minimizers =
        core::threadScratch<ChainScratch>().minimizers;
    core::NullProbe probe;
    index::computeMinimizersInto(read.codes(), index.k(), index.w(),
                                 minimizers, probe);
    for (const index::Minimizer &mini : minimizers) {
        const auto hits = index.occurrences(mini.hash);
        if (hits.empty() || hits.size() > max_occurrences)
            continue; // drop repetitive seeds, as all the tools do
        for (const index::GraphSeedHit &hit : hits) {
            Anchor anchor;
            anchor.queryPos = mini.position;
            anchor.node = hit.node;
            anchor.nodeOffset = hit.offset;
            // Read strand: the canonical strands of the query k-mer
            // and the graph k-mer agree on forward mappings.
            anchor.reverse = mini.reverse != hit.reverse;
            anchor.linearPos = linear.offsetOf(hit.node, hit.offset);
            anchors.push_back(anchor);
        }
    }
}

std::vector<Anchor>
collectAnchors(const seq::Sequence &read,
               const index::MinimizerIndex &index,
               const GraphLinearization &linear, size_t max_occurrences)
{
    std::vector<Anchor> anchors;
    collectAnchorsInto(read, index, linear, anchors, max_occurrences);
    return anchors;
}

void
clusterAnchorsInto(std::span<const Anchor> anchors, uint64_t band_width,
                   std::vector<AnchorChain> &clusters)
{
    clusters.clear();
    // Bucket by (strand, diagonal band). Reverse-strand alignments
    // are colinear along anti-diagonals (linear + query constant).
    std::unordered_map<uint64_t, AnchorChain> &buckets =
        core::threadScratch<ChainScratch>().buckets;
    buckets.clear();
    for (uint32_t i = 0; i < anchors.size(); ++i) {
        const Anchor &anchor = anchors[i];
        const uint64_t diag = anchor.reverse
            ? anchor.linearPos + anchor.queryPos
            : anchor.linearPos + (1ull << 40) - anchor.queryPos;
        const uint64_t key = (diag / band_width) << 1 |
                             (anchor.reverse ? 1 : 0);
        AnchorChain &chain = buckets[key];
        chain.anchorIds.push_back(i);
        chain.reverse = anchor.reverse;
        ++chain.score;
    }
    clusters.reserve(buckets.size());
    for (auto &[key, chain] : buckets)
        clusters.push_back(std::move(chain));
    std::sort(clusters.begin(), clusters.end(),
              [](const AnchorChain &a, const AnchorChain &b) {
                  return a.score > b.score;
              });
}

std::vector<AnchorChain>
clusterAnchors(std::span<const Anchor> anchors, uint64_t band_width)
{
    std::vector<AnchorChain> clusters;
    clusterAnchorsInto(anchors, band_width, clusters);
    return clusters;
}

void
chainAnchorsInto(std::span<const Anchor> anchors,
                 const ChainParams &params,
                 std::vector<AnchorChain> &chains)
{
    chains.clear();
    obsChainDpAnchors.add(anchors.size());
    ChainScratch &ws = core::threadScratch<ChainScratch>();
    // Sort anchor ids by (strand, linear position, query position).
    std::vector<uint32_t> &order = ws.order;
    order.resize(anchors.size());
    for (uint32_t i = 0; i < anchors.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        if (anchors[a].reverse != anchors[b].reverse)
            return !anchors[a].reverse;
        if (anchors[a].linearPos != anchors[b].linearPos)
            return anchors[a].linearPos < anchors[b].linearPos;
        return anchors[a].queryPos < anchors[b].queryPos;
    });

    const size_t n = order.size();
    std::vector<int64_t> &dp = ws.dp;
    std::vector<int64_t> &parent = ws.parent;
    dp.assign(n, 0);
    parent.assign(n, -1);
    for (size_t i = 0; i < n; ++i) {
        const Anchor &cur = anchors[order[i]];
        dp[i] = params.matchBonus;
        const size_t lookback =
            i > params.maxLookback ? i - params.maxLookback : 0;
        for (size_t j = i; j-- > lookback;) {
            const Anchor &prev = anchors[order[j]];
            if (prev.reverse != cur.reverse)
                break; // strands are grouped by the sort
            if (prev.linearPos >= cur.linearPos)
                continue;
            // Forward chains advance on the query; reverse chains
            // retreat (the query runs backward along the graph).
            if (cur.reverse ? prev.queryPos <= cur.queryPos
                            : prev.queryPos >= cur.queryPos) {
                continue;
            }
            const uint64_t ref_gap = cur.linearPos - prev.linearPos;
            const uint64_t query_gap = cur.reverse
                ? prev.queryPos - cur.queryPos
                : cur.queryPos - prev.queryPos;
            if (ref_gap > params.maxGap || query_gap > params.maxGap)
                continue;
            const auto gap_diff = static_cast<int64_t>(
                ref_gap > query_gap ? ref_gap - query_gap
                                    : query_gap - ref_gap);
            const int64_t candidate = dp[j] + params.matchBonus -
                params.gapScale * gap_diff / 8;
            if (candidate > dp[i]) {
                dp[i] = candidate;
                parent[i] = static_cast<int64_t>(j);
            }
        }
    }

    // Extract chains best-first over unused anchors.
    std::vector<size_t> &by_score = ws.byScore;
    by_score.resize(n);
    for (size_t i = 0; i < n; ++i)
        by_score[i] = i;
    std::sort(by_score.begin(), by_score.end(),
              [&](size_t a, size_t b) { return dp[a] > dp[b]; });
    std::vector<char> &used = ws.used;
    used.assign(n, 0);
    for (size_t head : by_score) {
        if (used[head] != 0)
            continue;
        AnchorChain chain;
        chain.score = dp[head];
        int64_t walk = static_cast<int64_t>(head);
        while (walk >= 0 && used[static_cast<size_t>(walk)] == 0) {
            used[static_cast<size_t>(walk)] = 1;
            chain.anchorIds.push_back(order[static_cast<size_t>(walk)]);
            chain.reverse =
                anchors[order[static_cast<size_t>(walk)]].reverse;
            walk = parent[static_cast<size_t>(walk)];
        }
        std::reverse(chain.anchorIds.begin(), chain.anchorIds.end());
        chains.push_back(std::move(chain));
    }
}

std::vector<AnchorChain>
chainAnchors(std::span<const Anchor> anchors, const ChainParams &params)
{
    std::vector<AnchorChain> chains;
    chainAnchorsInto(anchors, params, chains);
    return chains;
}

} // namespace pgb::pipeline
