#include "pipeline/wfmash.hpp"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "align/wfa.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "index/minimizer.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace pgb::pipeline {

namespace {

obs::Counter obsMatches("wfmash.matches");

/** Minimizer position table over one target sequence region. */
struct TargetIndex
{
    std::unordered_map<uint64_t, std::vector<uint32_t>> table;

    TargetIndex(const std::vector<uint8_t> &bases, size_t begin,
                size_t end, int k, int w)
    {
        const std::span<const uint8_t> window(bases.data() + begin,
                                              end - begin);
        for (const index::Minimizer &mini :
             index::computeMinimizers(window, k, w)) {
            table[mini.hash].push_back(
                mini.position + static_cast<uint32_t>(begin));
        }
    }
};

} // namespace

WfmashResult
allToAllAlign(const build::SequenceCatalog &catalog,
              const WfmashParams &params)
{
    obs::Span span("wfmash.all_to_all");
    WfmashResult result;
    const size_t n = catalog.sequenceCount();
    if (n < 2)
        return result;

    // All ordered pairs (i < j).
    struct Pair
    {
        size_t a, b;
    };
    std::vector<Pair> pairs;
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j)
            pairs.push_back({i, j});
    }

    std::mutex merge_lock;
    core::parallelFor(0, pairs.size(), params.threads,
                      [&](size_t pair_index) {
        const auto [ai, bi] = pairs[pair_index];
        const uint64_t a_begin = catalog.start(ai);
        const uint64_t a_end = catalog.end(ai);
        const uint64_t b_begin = catalog.start(bi);
        const uint64_t b_end = catalog.end(bi);

        // Pull the raw bases of both sequences via the catalog.
        // (Catalog stores the concatenation; recreate spans.)
        std::vector<uint8_t> a_bases(a_end - a_begin);
        for (uint64_t p = a_begin; p < a_end; ++p)
            a_bases[p - a_begin] = catalog.baseAt(p);
        std::vector<uint8_t> b_bases(b_end - b_begin);
        for (uint64_t p = b_begin; p < b_end; ++p)
            b_bases[p - b_begin] = catalog.baseAt(p);

        TargetIndex target(b_bases, 0, b_bases.size(), params.k,
                           params.w);

        std::vector<build::MatchSegment> local_matches;
        uint64_t mapped = 0, total_segments = 0;
        int64_t wfa_penalty = 0;
        double wfa_seconds = 0.0;

        for (size_t seg_start = 0; seg_start < a_bases.size();
             seg_start += params.segmentLength) {
            ++total_segments;
            const size_t seg_end = std::min(
                seg_start + params.segmentLength, a_bases.size());
            const std::span<const uint8_t> segment(
                a_bases.data() + seg_start, seg_end - seg_start);

            // ---- MashMap role: diagonal voting.
            std::unordered_map<int64_t, uint32_t> votes;
            int64_t best_diag = 0;
            uint32_t best_votes = 0;
            struct AnchorPair
            {
                uint32_t qpos, tpos;
            };
            std::vector<AnchorPair> anchor_pairs;
            for (const index::Minimizer &mini :
                 index::computeMinimizers(segment, params.k,
                                          params.w)) {
                auto it = target.table.find(mini.hash);
                if (it == target.table.end() || it->second.size() > 16)
                    continue;
                for (uint32_t tpos : it->second) {
                    anchor_pairs.push_back({mini.position, tpos});
                    const int64_t diag = static_cast<int64_t>(tpos) -
                                         mini.position;
                    const uint32_t v = ++votes[diag / 128];
                    if (v > best_votes) {
                        best_votes = v;
                        best_diag = diag;
                    }
                }
            }
            if (best_votes < 3)
                continue; // segment unmapped (diverged region)
            ++mapped;

            // ---- WFA base-level scoring over the mapped window.
            const int64_t t_lo = std::clamp<int64_t>(
                best_diag - 64, 0,
                static_cast<int64_t>(b_bases.size()));
            const int64_t t_hi = std::clamp<int64_t>(
                best_diag + static_cast<int64_t>(segment.size()) + 64,
                0, static_cast<int64_t>(b_bases.size()));
            if (params.runWfa && t_hi > t_lo) {
                core::WallTimer timer;
                const auto wfa = align::wfaAlign(
                    segment,
                    std::span<const uint8_t>(
                        b_bases.data() + t_lo,
                        static_cast<size_t>(t_hi - t_lo)),
                    align::WfaPenalties{},
                    static_cast<int32_t>(segment.size()));
                wfa_seconds += timer.seconds();
                if (wfa.reached)
                    wfa_penalty += wfa.score;
            }

            // ---- Exact-match runs: extend anchors near the winning
            // diagonal maximally; drop short and duplicate runs.
            std::unordered_map<int64_t, int64_t> diag_covered;
            for (const AnchorPair &anchor : anchor_pairs) {
                const int64_t diag = static_cast<int64_t>(anchor.tpos) -
                                     anchor.qpos;
                if (std::llabs(diag - best_diag) > 128)
                    continue;
                auto covered = diag_covered.find(diag);
                if (covered != diag_covered.end() &&
                    static_cast<int64_t>(anchor.qpos) <
                        covered->second) {
                    continue; // inside an already-emitted run
                }
                // Extend left and right.
                int64_t q = anchor.qpos + seg_start;
                int64_t t = anchor.tpos;
                while (q > 0 && t > 0 &&
                       a_bases[static_cast<size_t>(q - 1)] ==
                           b_bases[static_cast<size_t>(t - 1)]) {
                    --q;
                    --t;
                }
                int64_t q_end = anchor.qpos + seg_start;
                int64_t t_end = anchor.tpos;
                while (q_end < static_cast<int64_t>(a_bases.size()) &&
                       t_end < static_cast<int64_t>(b_bases.size()) &&
                       a_bases[static_cast<size_t>(q_end)] ==
                           b_bases[static_cast<size_t>(t_end)]) {
                    ++q_end;
                    ++t_end;
                }
                const int64_t run = q_end - q;
                diag_covered[diag] = q_end - static_cast<int64_t>(
                    seg_start);
                if (run < static_cast<int64_t>(params.minMatchLength))
                    continue;
                local_matches.push_back(
                    {a_begin + static_cast<uint64_t>(q),
                     b_begin + static_cast<uint64_t>(t),
                     static_cast<uint32_t>(run)});
            }
        }

        std::lock_guard<std::mutex> lock(merge_lock);
        result.matches.insert(result.matches.end(),
                              local_matches.begin(),
                              local_matches.end());
        result.segmentsMapped += mapped;
        result.segmentsTotal += total_segments;
        result.wfaPenaltyTotal += wfa_penalty;
        result.wfaSeconds += wfa_seconds;
    });

    // Deterministic output order regardless of thread interleaving.
    std::sort(result.matches.begin(), result.matches.end(),
              [](const build::MatchSegment &a,
                 const build::MatchSegment &b) {
                  if (a.aStart != b.aStart)
                      return a.aStart < b.aStart;
                  if (a.bStart != b.bStart)
                      return a.bStart < b.bStart;
                  return a.length < b.length;
              });
    result.matches.erase(
        std::unique(result.matches.begin(), result.matches.end(),
                    [](const build::MatchSegment &a,
                       const build::MatchSegment &b) {
                        return a.aStart == b.aStart &&
                               b.bStart == a.bStart &&
                               a.length == b.length;
                    }),
        result.matches.end());
    obsMatches.add(result.matches.size());
    return result;
}

} // namespace pgb::pipeline
