#include "prof/cache_sim.hpp"

#include <bit>

#include "core/logging.hpp"

namespace pgb::prof {

CacheSim::CacheSim(std::vector<CacheLevelConfig> levels)
    : configs_(std::move(levels))
{
    if (configs_.empty())
        core::fatal("CacheSim: at least one level required");
    for (const CacheLevelConfig &config : configs_) {
        const uint64_t lines = config.sizeBytes / config.lineBytes;
        if (lines == 0 || lines % config.ways != 0)
            core::fatal("CacheSim: bad geometry for ", config.name);
        Level level;
        level.ways = config.ways;
        level.setCount = static_cast<uint32_t>(lines / config.ways);
        if (!std::has_single_bit(static_cast<uint64_t>(level.setCount)))
            core::fatal("CacheSim: set count must be a power of two for ",
                        config.name, " (got ", level.setCount, ")");
        level.lineShift = static_cast<uint32_t>(
            std::countr_zero(static_cast<uint64_t>(config.lineBytes)));
        level.sets.resize(level.setCount);
        for (Set &set : level.sets) {
            set.tags.assign(config.ways, ~0ull);
            set.lastUse.assign(config.ways, 0);
        }
        levels_.push_back(std::move(level));
    }
    stats_.resize(configs_.size());
}

CacheSim
CacheSim::machineB()
{
    // Table 5, Machine B (Xeon Gold 6326): 48KB/12w L1D, 1.25MB/20w L2,
    // 24MB/12w L3. Set counts must be powers of two in this simulator,
    // so L1 uses 64 sets x 12 ways = 48KB exactly; L2's 1.25MB/20w
    // gives 1024 sets exactly; L3's 24MB/12w gives 32768 sets exactly.
    return CacheSim({
        {"L1", 48 * 1024, 12, 64},
        {"L2", 1280 * 1024, 20, 64},
        {"L3", 24ull * 1024 * 1024, 12, 64},
    });
}

CacheSim
CacheSim::gpuA6000()
{
    // Per-SM 128KB L1 and a 6MB device L2 (A6000), 128B lines; GPUs
    // have no next-line prefetcher in this model.
    return CacheSim({
        {"L1", 128 * 1024, 4, 128, false},
        {"L2", 6ull * 1024 * 1024, 12, 128, false},
    });
}

bool
CacheSim::accessLevel(Level &level, uint64_t line_address)
{
    const uint64_t set_index = line_address & (level.setCount - 1);
    const uint64_t tag = line_address >> std::countr_zero(
        static_cast<uint64_t>(level.setCount));
    Set &set = level.sets[set_index];
    ++tick_;
    for (uint32_t way = 0; way < level.ways; ++way) {
        if (set.tags[way] == tag) {
            set.lastUse[way] = tick_;
            return true;
        }
    }
    // Miss: evict LRU.
    uint32_t victim = 0;
    for (uint32_t way = 1; way < level.ways; ++way) {
        if (set.lastUse[way] < set.lastUse[victim])
            victim = way;
    }
    set.tags[victim] = tag;
    set.lastUse[victim] = tick_;
    return false;
}

void
CacheSim::access(uint64_t address, uint32_t bytes)
{
    const uint32_t line_bytes = configs_[0].lineBytes;
    const uint64_t first_line = address / line_bytes;
    const uint64_t last_line = (address + (bytes == 0 ? 0 : bytes - 1)) /
                               line_bytes;
    for (uint64_t line = first_line; line <= last_line; ++line) {
        // Walk down the hierarchy until a hit.
        for (size_t l = 0; l < levels_.size(); ++l) {
            // Levels may differ in line size; renormalize.
            const uint64_t level_line =
                (line * line_bytes) >> levels_[l].lineShift;
            ++stats_[l].accesses;
            if (accessLevel(levels_[l], level_line))
                break;
            ++stats_[l].misses;
            if (configs_[l].nextLinePrefetch)
                accessLevel(levels_[l], level_line + 1);
        }
    }
}

double
CacheSim::exclusiveMpki(size_t level, uint64_t instructions) const
{
    if (instructions == 0)
        return 0.0;
    // Misses at `level` that are served by the next level (or memory):
    // level's misses minus the next level's misses... no: exclusive
    // means an access missing through to memory is charged only to the
    // last level. Misses served by level l+1 = misses(l) - misses(l+1).
    const uint64_t misses_here = stats_[level].misses;
    const uint64_t misses_below =
        level + 1 < stats_.size() ? stats_[level + 1].misses : 0;
    const uint64_t exclusive =
        misses_here >= misses_below ? misses_here - misses_below : 0;
    return static_cast<double>(exclusive) * 1000.0 /
           static_cast<double>(instructions);
}

void
CacheSim::reset()
{
    for (size_t l = 0; l < levels_.size(); ++l) {
        for (Set &set : levels_[l].sets) {
            set.tags.assign(levels_[l].ways, ~0ull);
            set.lastUse.assign(levels_[l].ways, 0);
        }
        stats_[l] = {};
    }
    tick_ = 0;
}

} // namespace pgb::prof
