/**
 * @file
 * Gshare branch predictor simulator.
 *
 * Supplies the branch-misprediction input of the top-down model
 * (paper Figure 6: BadSpeculationBound is "mostly branch misprediction
 * in our workloads"). Branch sites are the static ids kernels pass to
 * Probe::branch().
 */

#ifndef PGB_PROF_BRANCH_SIM_HPP
#define PGB_PROF_BRANCH_SIM_HPP

#include <cstdint>
#include <vector>

namespace pgb::prof {

/** Gshare: global history XOR hashed site id indexing 2-bit counters. */
class BranchSim
{
  public:
    explicit BranchSim(uint32_t table_bits = 14, uint32_t history_bits = 12);

    /** Record one dynamic branch; updates prediction state. */
    void
    record(uint32_t site, bool taken)
    {
        const uint32_t index =
            (site * 2654435761u ^ history_) & tableMask_;
        const uint8_t counter = table_[index];
        const bool predicted = counter >= 2;
        ++branches_;
        if (predicted != taken)
            ++mispredicts_;
        // Saturating 2-bit update.
        if (taken && counter < 3)
            table_[index] = counter + 1;
        else if (!taken && counter > 0)
            table_[index] = counter - 1;
        history_ = ((history_ << 1) | (taken ? 1u : 0u)) & historyMask_;
    }

    uint64_t branches() const { return branches_; }
    uint64_t mispredicts() const { return mispredicts_; }

    double
    mispredictRate() const
    {
        return branches_ == 0
            ? 0.0 : static_cast<double>(mispredicts_) /
                    static_cast<double>(branches_);
    }

    void reset();

  private:
    uint32_t tableMask_;
    uint32_t historyMask_;
    uint32_t history_ = 0;
    uint64_t branches_ = 0;
    uint64_t mispredicts_ = 0;
    std::vector<uint8_t> table_;
};

} // namespace pgb::prof

#endif // PGB_PROF_BRANCH_SIM_HPP
