/**
 * @file
 * Top-down microarchitecture model (Yasin's methodology, paper
 * Figure 6 / Table 6).
 *
 * An analytical 4-wide superscalar model that converts the
 * characterization inputs — instruction mix, branch mispredictions,
 * and per-level cache misses — into the five top-down buckets
 * (Retiring, FrontEndBound, BadSpeculationBound, CoreBound,
 * MemoryBound) and an IPC estimate. The paper collects these with
 * VTune PMU counters on a Xeon Gold 6326; here they are a
 * deterministic function of the same program properties, so the
 * *ordering and dominant bucket per kernel* is the reproducible
 * signal (see DESIGN.md §1).
 */

#ifndef PGB_PROF_TOPDOWN_HPP
#define PGB_PROF_TOPDOWN_HPP

#include <cstdint>

#include "core/probe.hpp"
#include "prof/branch_sim.hpp"
#include "prof/cache_sim.hpp"

namespace pgb::prof {

/** Pipeline/latency constants for the analytical model. */
struct TopDownConfig
{
    uint32_t issueWidth = 4;
    /// execution port throughput per cycle
    double vectorPerCycle = 1.6;
    /**
     * Dependency-chain cost per vector op: the DP kernels' cells
     * depend on previous cells (paper: "compute-intensive kernels
     * with complex data dependencies"), so SIMD throughput is bounded
     * by latency chains, not just port width.
     */
    double vectorChainCycles = 0.9;
    double scalarPerCycle = 3.0;
    double memoryPerCycle = 2.0;
    double controlPerCycle = 2.0;
    /// exclusive miss latencies (cycles)
    double l1MissCycles = 10.0;
    double l2MissCycles = 28.0;
    double l3MissCycles = 170.0;
    /// average overlapped misses (memory-level parallelism)
    double mlp = 4.0;
    /// branch mispredict flush penalty (cycles)
    double mispredictCycles = 16.0;
    /// front-end redirect cost per taken branch (cycles)
    double takenBranchFrontEnd = 0.15;
};

/** The five top-down buckets (fractions of issue slots) plus IPC. */
struct TopDownResult
{
    double retiring = 0.0;
    double frontEndBound = 0.0;
    double badSpeculation = 0.0;
    double coreBound = 0.0;
    double memoryBound = 0.0;
    double ipc = 0.0;
    double cycles = 0.0;
};

/**
 * Evaluate the model from a kernel's counting probe, cache simulator,
 * and branch simulator state.
 */
TopDownResult analyzeTopDown(const core::CountingProbe &counts,
                             const CacheSim &cache,
                             const BranchSim &branches,
                             const TopDownConfig &config = {});

} // namespace pgb::prof

#endif // PGB_PROF_TOPDOWN_HPP
