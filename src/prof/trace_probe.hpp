/**
 * @file
 * TraceProbe: the full characterization probe.
 *
 * Extends CountingProbe (instruction mix, Figure 8) and streams every
 * memory access into a CacheSim (Figure 7) and every branch into a
 * BranchSim (feeding Figure 6's bad-speculation estimate). Plays the
 * role VTune + PIN play in the paper, driven by the kernels' own
 * probe hooks instead of hardware counters.
 */

#ifndef PGB_PROF_TRACE_PROBE_HPP
#define PGB_PROF_TRACE_PROBE_HPP

#include "core/probe.hpp"
#include "prof/branch_sim.hpp"
#include "prof/cache_sim.hpp"

namespace pgb::prof {

/** Counting probe that also drives the cache and branch simulators. */
struct TraceProbe : core::CountingProbe
{
    CacheSim *cache = nullptr;
    BranchSim *branches_sim = nullptr;

    TraceProbe(CacheSim &cache_sim, BranchSim &branch_sim)
        : cache(&cache_sim), branches_sim(&branch_sim)
    {
    }

    void
    load(const void *address, uint32_t bytes)
    {
        core::CountingProbe::load(address, bytes);
        cache->access(reinterpret_cast<uint64_t>(address), bytes);
    }

    void
    store(const void *address, uint32_t bytes)
    {
        core::CountingProbe::store(address, bytes);
        cache->access(reinterpret_cast<uint64_t>(address), bytes);
    }

    void
    branch(uint32_t site, bool taken)
    {
        core::CountingProbe::branch(site, taken);
        branches_sim->record(site, taken);
    }
};

} // namespace pgb::prof

#endif // PGB_PROF_TRACE_PROBE_HPP
