#include "prof/branch_sim.hpp"

namespace pgb::prof {

BranchSim::BranchSim(uint32_t table_bits, uint32_t history_bits)
    : tableMask_((1u << table_bits) - 1),
      historyMask_((1u << history_bits) - 1),
      table_(1u << table_bits, 1) // weakly not-taken
{
}

void
BranchSim::reset()
{
    table_.assign(table_.size(), 1);
    history_ = 0;
    branches_ = 0;
    mispredicts_ = 0;
}

} // namespace pgb::prof
