/**
 * @file
 * Multi-level set-associative cache simulator.
 *
 * Replays the memory traces emitted by probe-instrumented kernels to
 * produce the misses-per-kilo-instruction data of the paper's Figure 7
 * (which the authors collect with VTune on Machine B). Counting is
 * exclusive, exactly as the paper specifies: an access that misses L1
 * but hits L2 is an L2 "miss count" at L1 only — i.e. each level
 * counts the misses it serves to the level above.
 */

#ifndef PGB_PROF_CACHE_SIM_HPP
#define PGB_PROF_CACHE_SIM_HPP

#include <cstdint>
#include <cstddef>
#include <vector>

namespace pgb::prof {

/** Geometry of one cache level. */
struct CacheLevelConfig
{
    const char *name = "L1";
    uint64_t sizeBytes = 32 * 1024;
    uint32_t ways = 8;
    uint32_t lineBytes = 64;
    /**
     * Next-line prefetch: a miss also installs the following line
     * (models the stream prefetchers that hide sequential misses on
     * the Xeons the paper profiles). Prefetched lines do not count as
     * accesses or misses.
     */
    bool nextLinePrefetch = true;
};

/** Access counters for one level. */
struct CacheLevelStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;

    double
    missRate() const
    {
        return accesses == 0
            ? 0.0 : static_cast<double>(misses) /
                    static_cast<double>(accesses);
    }
};

/** LRU set-associative multi-level cache (inclusive lookup chain). */
class CacheSim
{
  public:
    explicit CacheSim(std::vector<CacheLevelConfig> levels);

    /** Machine B of the paper's Table 5 (Xeon Gold 6326). */
    static CacheSim machineB();

    /** RTX A6000-like two-level GPU cache (per-SM L1, device L2). */
    static CacheSim gpuA6000();

    /**
     * Simulate one access of @p bytes at @p address (straddling
     * accesses touch every covered line).
     */
    void access(uint64_t address, uint32_t bytes);

    size_t levelCount() const { return levels_.size(); }
    const CacheLevelStats &stats(size_t level) const
    {
        return stats_[level];
    }
    const CacheLevelConfig &config(size_t level) const
    {
        return configs_[level];
    }

    /**
     * Exclusive misses at @p level per kilo-instruction given
     * @p instructions retired (Figure 7's metric): misses at this level
     * that hit in the next level (or memory for the last level).
     */
    double exclusiveMpki(size_t level, uint64_t instructions) const;

    void reset();

  private:
    struct Set
    {
        std::vector<uint64_t> tags;     ///< per way
        std::vector<uint64_t> lastUse;  ///< LRU timestamps
    };
    struct Level
    {
        uint32_t setCount;
        uint32_t ways;
        uint32_t lineShift;
        std::vector<Set> sets;
    };

    /** @return true on hit. */
    bool accessLevel(Level &level, uint64_t line_address);

    std::vector<CacheLevelConfig> configs_;
    std::vector<Level> levels_;
    std::vector<CacheLevelStats> stats_;
    uint64_t tick_ = 0;
};

} // namespace pgb::prof

#endif // PGB_PROF_CACHE_SIM_HPP
