#include "prof/topdown.hpp"

#include <algorithm>

namespace pgb::prof {

TopDownResult
analyzeTopDown(const core::CountingProbe &counts, const CacheSim &cache,
               const BranchSim &branches, const TopDownConfig &config)
{
    using core::OpKind;
    auto count = [&](OpKind kind) {
        return static_cast<double>(
            counts.counts[static_cast<size_t>(kind)]);
    };
    const double vec = count(OpKind::kVector);
    const double ctl = count(OpKind::kControl);
    const double mem = count(OpKind::kMemory);
    const double scalar = count(OpKind::kScalar) + count(OpKind::kRegister);
    const double total = vec + ctl + mem + scalar;

    TopDownResult result;
    if (total <= 0.0)
        return result;

    // --- Issue/execute cycles: the binding execution resource.
    const double width_cycles = total / config.issueWidth;
    const double port_cycles = std::max({
        vec / config.vectorPerCycle,
        vec * config.vectorChainCycles,
        scalar / config.scalarPerCycle,
        mem / config.memoryPerCycle,
        ctl / config.controlPerCycle,
    });
    const double exec_cycles = std::max(width_cycles, port_cycles);
    // Core-bound stalls: execution-port pressure beyond ideal width.
    const double core_stall = exec_cycles - width_cycles;

    // --- Memory stalls from exclusive misses, discounted by MLP.
    const uint64_t instructions = counts.totalOps();
    const double l1_excl =
        cache.exclusiveMpki(0, instructions) * total / 1000.0;
    const double l2_excl = cache.levelCount() > 1
        ? cache.exclusiveMpki(1, instructions) * total / 1000.0 : 0.0;
    const double l3_excl = cache.levelCount() > 2
        ? cache.exclusiveMpki(2, instructions) * total / 1000.0 : 0.0;
    const double mem_stall =
        (l1_excl * config.l1MissCycles + l2_excl * config.l2MissCycles +
         l3_excl * config.l3MissCycles) / config.mlp;

    // --- Bad speculation: flush cost of mispredicted branches.
    const double bs_cycles =
        static_cast<double>(branches.mispredicts()) *
        config.mispredictCycles;

    // --- Front end: fetch redirects on taken branches plus refill
    // after mispredicts.
    const double taken =
        static_cast<double>(counts.branchesTaken);
    const double fe_cycles = taken * config.takenBranchFrontEnd +
        static_cast<double>(branches.mispredicts()) * 2.0;

    const double cycles =
        width_cycles + core_stall + mem_stall + bs_cycles + fe_cycles;
    const double slots = cycles * config.issueWidth;

    result.cycles = cycles;
    result.ipc = total / cycles;
    result.retiring = total / slots;
    result.badSpeculation = bs_cycles * config.issueWidth / slots;
    result.frontEndBound = fe_cycles * config.issueWidth / slots;
    result.coreBound = core_stall * config.issueWidth / slots;
    result.memoryBound = mem_stall * config.issueWidth / slots;
    return result;
}

} // namespace pgb::prof
