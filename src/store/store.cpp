#include "store/store.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <type_traits>

#include "core/fault.hpp"
#include "core/io.hpp"
#include "core/logging.hpp"
#include "obs/metrics.hpp"
#include "store/format.hpp"

namespace pgb::store {

namespace {

using core::fatal;

core::FaultSite faultOpen(
    "store.open", "FatalError, non-zero CLI exit; artifact untouched");
core::FaultSite faultMmap(
    "store.mmap", "FatalError, non-zero CLI exit; artifact untouched");
core::FaultSite faultSection(
    "store.section", "FatalError, non-zero CLI exit; fails closed");
core::FaultSite faultChecksum(
    "store.checksum", "FatalError, non-zero CLI exit; fails closed");

obs::Counter obsWrites("store.artifacts_written");
obs::Counter obsLoads("store.artifacts_loaded");
obs::Counter obsBytesLoaded("store.bytes_loaded");

/** Render a fourcc tag for diagnostics ("MTAB"). */
std::string
tagName(uint32_t tag)
{
    std::string name(4, '?');
    for (int i = 0; i < 4; ++i) {
        const char c = static_cast<char>((tag >> (8 * i)) & 0xff);
        name[static_cast<size_t>(i)] =
            c >= 0x20 && c < 0x7f ? c : '?';
    }
    return name;
}

/** One section payload being assembled by the writer. */
struct Section
{
    uint32_t tag;
    std::vector<uint8_t> bytes;
};

template <typename T>
void
appendRaw(std::vector<uint8_t> &out, const T *data, size_t count)
{
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t bytes = count * sizeof(T);
    const size_t at = out.size();
    out.resize(at + bytes);
    if (bytes > 0)
        std::memcpy(out.data() + at, data, bytes);
}

template <typename T>
Section
makeSection(uint32_t tag, const std::vector<T> &values)
{
    Section section{tag, {}};
    appendRaw(section.bytes, values.data(), values.size());
    return section;
}

size_t
alignUp(size_t offset)
{
    return (offset + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

// ---------------------------------------------------------------------
// Loading
// ---------------------------------------------------------------------

/** A validated section: tag plus its mapped byte range. */
struct LoadedSection
{
    uint32_t tag = 0;
    const uint8_t *data = nullptr;
    size_t length = 0;
};

/** Find a required section by tag. */
const LoadedSection &
need(const std::string &path, const std::vector<LoadedSection> &sections,
     uint32_t tag)
{
    for (const LoadedSection &section : sections) {
        if (section.tag == tag)
            return section;
    }
    fatal(path, ": missing required section ", tagName(tag));
}

/** Find an optional section by tag; nullptr when absent. */
const LoadedSection *
maybe(const std::vector<LoadedSection> &sections, uint32_t tag)
{
    for (const LoadedSection &section : sections) {
        if (section.tag == tag)
            return &section;
    }
    return nullptr;
}

/**
 * View a section as @p count records of type T, checking the length
 * matches exactly (a count mismatch means the file is internally
 * inconsistent even though checksums passed — fail closed).
 */
template <typename T>
const T *
viewAs(const std::string &path, const LoadedSection &section,
       size_t count)
{
    static_assert(std::is_trivially_copyable_v<T>);
    if (section.length != count * sizeof(T)) {
        fatal(path, ": section ", tagName(section.tag), " holds ",
              section.length, " bytes, expected ", count * sizeof(T));
    }
    return reinterpret_cast<const T *>(section.data);
}

/** Copy a whole section into a typed vector (bulk-copy sections). */
template <typename T>
std::vector<T>
copyAll(const std::string &path, const LoadedSection &section)
{
    static_assert(std::is_trivially_copyable_v<T>);
    if (section.length % sizeof(T) != 0) {
        fatal(path, ": section ", tagName(section.tag), " holds ",
              section.length, " bytes, not a multiple of ", sizeof(T));
    }
    std::vector<T> values(section.length / sizeof(T));
    if (section.length > 0)
        std::memcpy(values.data(), section.data, section.length);
    return values;
}

} // namespace

void
writeArtifact(const std::string &path, const graph::PanGraph &graph,
              const index::MinimizerIndex &minimizers,
              const index::GbwtIndex *gbwt, const index::FmIndex *fm,
              const ShardExtras *extras)
{
    const size_t node_count = graph.nodeCount();
    const size_t path_count = graph.pathCount();
    if (extras != nullptr &&
        (extras->origNodes.size() != node_count ||
         extras->linearBases.size() != node_count)) {
        fatal(path, ": shard extras hold ", extras->origNodes.size(),
              "/", extras->linearBases.size(), " entries, graph has ",
              node_count, " nodes");
    }

    // ---- Assemble section payloads.
    std::vector<Section> sections;

    Meta meta = {};
    meta.nodeCount = node_count;
    meta.edgeCount = graph.edgeCount();
    meta.pathCount = path_count;
    meta.k = static_cast<uint32_t>(minimizers.k());
    meta.w = static_cast<uint32_t>(minimizers.w());
    if (gbwt != nullptr) {
        meta.flags |= kFlagHasGbwt;
        if (gbwt->runLengthEncoded())
            meta.flags |= kFlagGbwtRle;
    }
    if (fm != nullptr)
        meta.flags |= kFlagHasFmIndex;
    {
        Section section{kSecMeta, {}};
        appendRaw(section.bytes, &meta, 1);
        sections.push_back(std::move(section));
    }

    // Graph: node sequences.
    {
        std::vector<uint8_t> seq_bytes;
        std::vector<uint64_t> seq_offsets;
        seq_offsets.reserve(node_count + 1);
        seq_offsets.push_back(0);
        for (graph::NodeId node = 0; node < node_count; ++node) {
            const auto &codes = graph.nodeSequence(node).codes();
            appendRaw(seq_bytes, codes.data(), codes.size());
            seq_offsets.push_back(seq_bytes.size());
        }
        sections.push_back({kSecGraphSeq, std::move(seq_bytes)});
        sections.push_back(makeSection(kSecGraphSeqOffsets, seq_offsets));
    }

    // Graph: adjacency per oriented handle.
    {
        std::vector<uint32_t> adj;
        std::vector<uint64_t> adj_offsets;
        adj_offsets.reserve(node_count * 2 + 1);
        adj_offsets.push_back(0);
        for (uint32_t packed = 0; packed < node_count * 2; ++packed) {
            for (graph::Handle successor :
                 graph.successors(graph::Handle::fromPacked(packed)))
                adj.push_back(successor.packed());
            adj_offsets.push_back(adj.size());
        }
        sections.push_back(makeSection(kSecGraphAdj, adj));
        sections.push_back(makeSection(kSecGraphAdjOffsets, adj_offsets));
    }

    // Graph: embedded paths.
    {
        std::vector<uint32_t> steps;
        std::vector<uint64_t> step_offsets;
        std::vector<uint8_t> names;
        step_offsets.reserve(path_count + 1);
        step_offsets.push_back(0);
        for (graph::PathId p = 0; p < path_count; ++p) {
            for (graph::Handle step : graph.pathSteps(p))
                steps.push_back(step.packed());
            step_offsets.push_back(steps.size());
            const std::string &name = graph.pathName(p);
            appendRaw(names, name.c_str(), name.size() + 1);
        }
        sections.push_back(makeSection(kSecPathSteps, steps));
        sections.push_back(makeSection(kSecPathStepOffsets, step_offsets));
        sections.push_back({kSecPathNames, std::move(names)});
    }

    // Minimizer index: the zero-copy sections.
    {
        const auto table = minimizers.flatTable();
        sections.push_back(makeSection(kSecMinimizerTable, table));
        Section hits{kSecMinimizerHits, {}};
        const auto all = minimizers.allHits();
        appendRaw(hits.bytes, all.data(), all.size());
        sections.push_back(std::move(hits));
    }

    // GBWT (optional).
    if (gbwt != nullptr) {
        const auto image = gbwt->flatten();
        sections.push_back(makeSection(kSecGbwtRecords,
                                       image.recordHeaders));
        sections.push_back(makeSection(kSecGbwtEdges, image.edges));
        sections.push_back(makeSection(kSecGbwtEdgeOffsets,
                                       image.edgeOffsets));
        sections.push_back(makeSection(kSecGbwtRuns, image.runs));
        sections.push_back(makeSection(kSecGbwtPlain, image.plain));
    }

    // FM-index (optional): the second family of zero-copy sections.
    if (fm != nullptr) {
        FmMeta fm_meta = {};
        fm_meta.textLength = fm->textLength();
        fm_meta.sampleRate = fm->sampleRate();
        Section fmet{kSecFmMeta, {}};
        appendRaw(fmet.bytes, &fm_meta, 1);
        sections.push_back(std::move(fmet));

        auto span_section = [&](uint32_t tag, const auto &span) {
            Section section{tag, {}};
            appendRaw(section.bytes, span.data(), span.size());
            sections.push_back(std::move(section));
        };
        span_section(kSecFmBwt, fm->bwtData());
        span_section(kSecFmOcc, fm->occData());
        span_section(kSecFmSamples, fm->sampleData());
        span_section(kSecFmMarks, fm->markData());
        span_section(kSecFmPathOffsets, fm->pathOffsetsData());
    }

    // Shard projection (optional): written by `pgb shard` only.
    if (extras != nullptr) {
        sections.push_back(makeSection(kSecShardNodes,
                                       extras->origNodes));
        sections.push_back(makeSection(kSecShardLinear,
                                       extras->linearBases));
    }

    // ---- Lay out the file: header, table, aligned payloads.
    Header header = {};
    std::memcpy(header.magic, kMagic, sizeof(kMagic));
    header.version = kFormatVersion;
    header.endian = kEndianTag;
    header.sectionCount = sections.size();

    std::vector<SectionDesc> table(sections.size());
    size_t offset = sizeof(Header) +
                    sections.size() * sizeof(SectionDesc);
    for (size_t s = 0; s < sections.size(); ++s) {
        offset = alignUp(offset);
        table[s].tag = sections[s].tag;
        table[s].reserved = 0;
        table[s].offset = offset;
        table[s].length = sections[s].bytes.size();
        table[s].checksum = fnv1a64(sections[s].bytes.data(),
                                    sections[s].bytes.size());
        offset += sections[s].bytes.size();
    }
    header.fileBytes = alignUp(offset);
    header.tableChecksum =
        fnv1a64(table.data(), table.size() * sizeof(SectionDesc));

    // ---- Checked write into a temp file, then atomic rename: a
    // failed or interrupted write never leaves a partial `.pgbi`.
    const std::string tmp_path = path + ".tmp";
    try {
        core::CheckedWriter out(tmp_path);
        auto put = [&](const void *data, size_t bytes) {
            out.stream().write(static_cast<const char *>(data),
                               static_cast<std::streamsize>(bytes));
        };
        auto pad_to = [&](size_t target) {
            static const char zeros[kSectionAlign] = {};
            const auto at =
                static_cast<size_t>(out.stream().tellp());
            if (at < target)
                put(zeros, target - at);
        };
        put(&header, sizeof(header));
        put(table.data(), table.size() * sizeof(SectionDesc));
        for (size_t s = 0; s < sections.size(); ++s) {
            pad_to(table[s].offset);
            put(sections[s].bytes.data(), sections[s].bytes.size());
        }
        pad_to(header.fileBytes);
        out.finish();
    } catch (...) {
        std::remove(tmp_path.c_str());
        throw;
    }
    if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
        const int err = errno;
        std::remove(tmp_path.c_str());
        fatal(path, ": cannot rename temp artifact into place: ",
              std::strerror(err));
    }
    obsWrites.add();
}

std::unique_ptr<Artifact>
Artifact::load(const std::string &path)
{
    if (faultOpen.fire())
        fatal(path, ": cannot open: injected fault");

    auto artifact = std::unique_ptr<Artifact>(new Artifact());
    artifact->path_ = path;
    artifact->arena_ = core::Arena::mapReadOnly(path);
    const core::Arena &arena = artifact->arena_;
    if (faultMmap.fire())
        fatal(path, ": cannot map: injected fault");

    // ---- Header.
    if (arena.size() < sizeof(Header))
        fatal(path, ": truncated artifact (", arena.size(),
              " bytes, header needs ", sizeof(Header), ")");
    Header header;
    std::memcpy(&header, arena.at(0), sizeof(header));
    if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0)
        fatal(path, ": not a .pgbi artifact (bad magic)");
    if (header.version != kFormatVersion) {
        fatal(path, ": format version ", header.version,
              " unsupported (this build reads version ",
              kFormatVersion, ")");
    }
    if (header.endian != kEndianTag) {
        fatal(path, ": artifact was written on a machine of the "
                    "other endianness");
    }
    if (header.sectionCount > kMaxSections)
        fatal(path, ": implausible section count ",
              header.sectionCount);
    if (header.fileBytes != arena.size()) {
        fatal(path, ": truncated artifact (header claims ",
              header.fileBytes, " bytes, file has ", arena.size(), ")");
    }

    // ---- Section table.
    const size_t table_bytes =
        static_cast<size_t>(header.sectionCount) * sizeof(SectionDesc);
    if (sizeof(Header) + table_bytes > arena.size())
        fatal(path, ": truncated artifact (section table past EOF)");
    std::vector<SectionDesc> table(header.sectionCount);
    if (table_bytes > 0)
        std::memcpy(table.data(), arena.at(sizeof(Header)), table_bytes);
    if (fnv1a64(table.data(), table_bytes) != header.tableChecksum)
        fatal(path, ": section table corrupt (checksum mismatch)");
    artifact->tableChecksum_ = header.tableChecksum;

    std::vector<LoadedSection> sections;
    sections.reserve(table.size());
    for (const SectionDesc &desc : table) {
        if (faultSection.fire() ||
            desc.offset % kSectionAlign != 0 ||
            desc.offset > arena.size() ||
            desc.length > arena.size() - desc.offset) {
            fatal(path, ": section ", tagName(desc.tag),
                  " out of bounds (offset ", desc.offset, ", length ",
                  desc.length, ", file ", arena.size(), " bytes)");
        }
        if (faultChecksum.fire() ||
            fnv1a64(arena.at(desc.offset), desc.length) !=
                desc.checksum) {
            fatal(path, ": section ", tagName(desc.tag),
                  " corrupt (checksum mismatch)");
        }
        sections.push_back(
            {desc.tag, arena.at(desc.offset), desc.length});
    }

    // ---- META.
    const Meta &meta =
        *viewAs<Meta>(path, need(path, sections, kSecMeta), 1);
    const auto node_count = static_cast<size_t>(meta.nodeCount);
    const auto path_count = static_cast<size_t>(meta.pathCount);
    artifact->k_ = static_cast<int>(meta.k);
    artifact->w_ = static_cast<int>(meta.w);

    // ---- Graph (single bulk copy per section).
    {
        const auto &seq = need(path, sections, kSecGraphSeq);
        const uint64_t *seq_offsets = viewAs<uint64_t>(
            path, need(path, sections, kSecGraphSeqOffsets),
            node_count + 1);
        if (node_count > 0 && seq_offsets[node_count] != seq.length)
            fatal(path, ": GSEQ/GSOF sections disagree");
        std::vector<seq::Sequence> node_seqs;
        node_seqs.reserve(node_count);
        for (size_t node = 0; node < node_count; ++node) {
            const uint64_t lo = seq_offsets[node];
            const uint64_t hi = seq_offsets[node + 1];
            if (lo > hi || hi > seq.length)
                fatal(path, ": GSOF offsets are not monotone");
            node_seqs.emplace_back(std::vector<uint8_t>(
                seq.data + lo, seq.data + hi));
        }

        const auto &adj = need(path, sections, kSecGraphAdj);
        const uint64_t *adj_offsets = viewAs<uint64_t>(
            path, need(path, sections, kSecGraphAdjOffsets),
            node_count * 2 + 1);
        const uint32_t *adj_data =
            viewAs<uint32_t>(path, adj,
                             adj.length / sizeof(uint32_t));
        if (adj_offsets[node_count * 2] !=
            adj.length / sizeof(uint32_t))
            fatal(path, ": GADJ/GAOF sections disagree");
        std::vector<std::vector<graph::Handle>> adjacency(
            node_count * 2);
        for (size_t h = 0; h < node_count * 2; ++h) {
            const uint64_t lo = adj_offsets[h];
            const uint64_t hi = adj_offsets[h + 1];
            if (lo > hi)
                fatal(path, ": GAOF offsets are not monotone");
            adjacency[h].reserve(hi - lo);
            for (uint64_t i = lo; i < hi; ++i) {
                const uint32_t packed = adj_data[i];
                if (packed >= node_count * 2)
                    fatal(path, ": GADJ references node ",
                          packed >> 1, " of ", node_count);
                adjacency[h].push_back(
                    graph::Handle::fromPacked(packed));
            }
        }

        const auto &steps = need(path, sections, kSecPathSteps);
        const uint64_t *step_offsets = viewAs<uint64_t>(
            path, need(path, sections, kSecPathStepOffsets),
            path_count + 1);
        const uint32_t *step_data = viewAs<uint32_t>(
            path, steps, steps.length / sizeof(uint32_t));
        if (step_offsets[path_count] != steps.length / sizeof(uint32_t))
            fatal(path, ": PSTP/PSOF sections disagree");
        std::vector<std::vector<graph::Handle>> paths(path_count);
        for (size_t p = 0; p < path_count; ++p) {
            const uint64_t lo = step_offsets[p];
            const uint64_t hi = step_offsets[p + 1];
            if (lo > hi)
                fatal(path, ": PSOF offsets are not monotone");
            paths[p].reserve(hi - lo);
            for (uint64_t i = lo; i < hi; ++i) {
                const uint32_t packed = step_data[i];
                if (packed >= node_count * 2)
                    fatal(path, ": path step references node ",
                          packed >> 1, " of ", node_count);
                paths[p].push_back(graph::Handle::fromPacked(packed));
            }
        }

        const auto &names = need(path, sections, kSecPathNames);
        std::vector<std::string> path_names;
        path_names.reserve(path_count);
        size_t at = 0;
        for (size_t p = 0; p < path_count; ++p) {
            const auto *begin = names.data + at;
            const auto *end = static_cast<const uint8_t *>(
                std::memchr(begin, '\0', names.length - at));
            if (end == nullptr)
                fatal(path, ": PNAM section is not NUL-terminated");
            path_names.emplace_back(
                reinterpret_cast<const char *>(begin),
                static_cast<size_t>(end - begin));
            at += path_names.back().size() + 1;
        }

        artifact->graph_ = graph::PanGraph::restore(
            std::move(node_seqs), std::move(adjacency),
            static_cast<size_t>(meta.edgeCount), std::move(paths),
            std::move(path_names));
    }

    // ---- Minimizer index: zero-copy spans over the mapping.
    {
        const auto &table_sec = need(path, sections, kSecMinimizerTable);
        const auto &hits_sec = need(path, sections, kSecMinimizerHits);
        const size_t entry_count =
            table_sec.length / sizeof(index::MinimizerIndex::TableEntry);
        const size_t hit_count =
            hits_sec.length / sizeof(index::GraphSeedHit);
        const auto *entries =
            viewAs<index::MinimizerIndex::TableEntry>(path, table_sec,
                                                      entry_count);
        const auto *hits =
            viewAs<index::GraphSeedHit>(path, hits_sec, hit_count);
        for (size_t e = 0; e < entry_count; ++e) {
            if (entries[e].begin > entries[e].end ||
                entries[e].end > hit_count)
                fatal(path, ": MTAB entry ", e,
                      " points outside MHIT");
            if (e > 0 && entries[e - 1].hash >= entries[e].hash)
                fatal(path, ": MTAB is not sorted by hash");
        }
        artifact->minimizers_ =
            std::make_unique<index::MinimizerIndex>(
                artifact->k_, artifact->w_,
                std::span<const index::MinimizerIndex::TableEntry>(
                    entries, entry_count),
                std::span<const index::GraphSeedHit>(hits, hit_count));
    }

    // ---- GBWT (single bulk copy).
    if ((meta.flags & kFlagHasGbwt) != 0) {
        index::GbwtIndex::FlatImage image;
        image.rle = (meta.flags & kFlagGbwtRle) != 0;
        image.recordHeaders = copyAll<uint32_t>(
            path, need(path, sections, kSecGbwtRecords));
        image.edges = copyAll<uint32_t>(
            path, need(path, sections, kSecGbwtEdges));
        image.edgeOffsets = copyAll<uint32_t>(
            path, need(path, sections, kSecGbwtEdgeOffsets));
        image.runs = copyAll<uint32_t>(
            path, need(path, sections, kSecGbwtRuns));
        image.plain = copyAll<uint32_t>(
            path, need(path, sections, kSecGbwtPlain));
        if (image.recordHeaders.size() % 4 != 0)
            fatal(path, ": BREC section is not a whole record count");
        const size_t records = image.recordHeaders.size() / 4;
        if (records != node_count * 2 + 1)
            fatal(path, ": BREC holds ", records,
                  " records, graph needs ", node_count * 2 + 1);
        if (image.edges.size() != image.edgeOffsets.size())
            fatal(path, ": BEDG/BEOF sections disagree");
        size_t edge_total = 0, run_total = 0, plain_total = 0;
        for (size_t r = 0; r < records; ++r) {
            edge_total += image.recordHeaders[r * 4 + 1];
            run_total += image.recordHeaders[r * 4 + 2];
            plain_total += image.recordHeaders[r * 4 + 3];
        }
        if (edge_total != image.edges.size() ||
            run_total * 2 != image.runs.size() ||
            plain_total != image.plain.size())
            fatal(path, ": GBWT record headers disagree with bodies");
        artifact->gbwt_ = std::make_unique<index::GbwtIndex>(
            index::GbwtIndex::restore(image));
    }

    // ---- FM-index: zero-copy spans over the mapping. Checksums have
    // already passed, so these checks target internal inconsistency:
    // symbols outside the alphabet or checkpoints that disagree with
    // the BWT would misindex the derived C/rank structures.
    if ((meta.flags & kFlagHasFmIndex) != 0) {
        const FmMeta &fm_meta =
            *viewAs<FmMeta>(path, need(path, sections, kSecFmMeta), 1);
        if (fm_meta.sampleRate == 0)
            fatal(path, ": FMET sample rate is zero");
        const auto n = static_cast<size_t>(fm_meta.textLength);
        constexpr uint32_t kSigma = index::FmIndex::kAlphabet;
        constexpr uint32_t kBlock = index::FmIndex::kOccBlock;
        const uint8_t *bwt =
            viewAs<uint8_t>(path, need(path, sections, kSecFmBwt), n);
        const size_t occ_count = (n / kBlock + 1) * kSigma;
        const uint32_t *occ = viewAs<uint32_t>(
            path, need(path, sections, kSecFmOcc), occ_count);
        uint32_t running[kSigma] = {};
        for (size_t r = 0; r < n; ++r) {
            if (r % kBlock == 0)
                for (uint32_t c = 0; c < kSigma; ++c)
                    if (occ[(r / kBlock) * kSigma + c] != running[c])
                        fatal(path, ": FOCC checkpoints disagree "
                                    "with the BWT");
            if (bwt[r] >= kSigma)
                fatal(path, ": FBWT holds symbol ", bwt[r],
                      " outside the FM alphabet");
            ++running[bwt[r]];
        }
        if (n % kBlock == 0)
            for (uint32_t c = 0; c < kSigma; ++c)
                if (occ[(n / kBlock) * kSigma + c] != running[c])
                    fatal(path,
                          ": FOCC checkpoints disagree with the BWT");

        const uint64_t *marks = viewAs<uint64_t>(
            path, need(path, sections, kSecFmMarks), (n + 63) / 64);
        uint64_t marked = 0;
        for (size_t w = 0; w < (n + 63) / 64; ++w)
            marked += static_cast<uint64_t>(
                __builtin_popcountll(marks[w]));
        if (n % 64 != 0 && n > 0 &&
            (marks[(n - 1) / 64] >> (n % 64)) != 0)
            fatal(path, ": FMRK has mark bits past the text end");
        const uint32_t *samples = viewAs<uint32_t>(
            path, need(path, sections, kSecFmSamples),
            static_cast<size_t>(marked));
        for (uint64_t s = 0; s < marked; ++s)
            if (samples[s] >= n)
                fatal(path, ": FSSA sample ", s,
                      " points past the text end");

        const uint64_t *fm_offsets = viewAs<uint64_t>(
            path, need(path, sections, kSecFmPathOffsets),
            path_count + 1);
        if (path_count == 0)
            fatal(path, ": FM-index artifact has no embedded paths");
        if (fm_offsets[0] != 0 ||
            fm_offsets[path_count] != fm_meta.textLength)
            fatal(path, ": FPOF does not span the FM text");
        for (size_t p = 0; p < path_count; ++p) {
            if (fm_offsets[p + 1] <= fm_offsets[p])
                fatal(path, ": FPOF offsets are not monotone");
            if (fm_offsets[p + 1] - fm_offsets[p] !=
                artifact->graph_.pathLength(
                    static_cast<graph::PathId>(p)) + 1)
                fatal(path, ": FPOF disagrees with the graph's paths");
        }

        artifact->fm_ = std::make_unique<index::FmIndex>(
            fm_meta.sampleRate,
            std::span<const uint8_t>(bwt, n),
            std::span<const uint32_t>(occ, occ_count),
            std::span<const uint32_t>(samples,
                                      static_cast<size_t>(marked)),
            std::span<const uint64_t>(marks, (n + 63) / 64),
            std::span<const uint64_t>(fm_offsets, path_count + 1));
    }

    // ---- Shard projection (optional): zero-copy spans. A shard
    // carries both sections or neither; each maps one record per node.
    {
        const LoadedSection *nodes_sec = maybe(sections, kSecShardNodes);
        const LoadedSection *linear_sec =
            maybe(sections, kSecShardLinear);
        if ((nodes_sec == nullptr) != (linear_sec == nullptr))
            fatal(path, ": artifact holds only one of SNOD/SLIN");
        if (nodes_sec != nullptr) {
            if (node_count == 0)
                fatal(path, ": SNOD present in an empty graph");
            const uint32_t *orig = viewAs<uint32_t>(path, *nodes_sec,
                                                    node_count);
            const uint64_t *linear = viewAs<uint64_t>(
                path, *linear_sec, node_count);
            for (size_t i = 1; i < node_count; ++i) {
                if (orig[i - 1] >= orig[i])
                    fatal(path, ": SNOD global ids are not strictly "
                                "increasing");
            }
            artifact->origNodes_ =
                std::span<const uint32_t>(orig, node_count);
            artifact->linearBases_ =
                std::span<const uint64_t>(linear, node_count);
        }
    }

    obsLoads.add();
    obsBytesLoaded.add(arena.size());
    return artifact;
}

uint64_t
readTableChecksum(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        fatal(path, ": cannot open: ", std::strerror(errno));
    Header header;
    const size_t got = std::fread(&header, 1, sizeof(header), file);
    std::fclose(file);
    if (got != sizeof(header))
        fatal(path, ": truncated artifact (", got,
              " bytes, header needs ", sizeof(Header), ")");
    if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0)
        fatal(path, ": not a .pgbi artifact (bad magic)");
    return header.tableChecksum;
}

} // namespace pgb::store
