/**
 * @file
 * Shard-set manifests (`.pgbs`): the small checksummed text file that
 * turns a directory of per-component `.pgbi` shards into one openable
 * pangenome (DESIGN.md §13).
 *
 * `pgb shard` partitions a built pangenome by connected component,
 * groups components into `--target-shard-mb` bins, writes one `.pgbi`
 * artifact per bin (with SNOD/SLIN projection sections), and records
 * the set here: the monolith's scalar facts (so mapping parameters and
 * avgNodeLength are available without touching any shard), one line
 * per shard (relative path, size, digest = the artifact's own
 * section-table checksum), and one line per component (its shard and
 * its global node-id ranges, which drive routing).
 *
 * Loading fails closed, like `.pgbi` loading: a bad version, a
 * checksum mismatch, a duplicate or uncovering component, a missing or
 * resized shard file are all one-line FatalErrors with the manifest
 * path (and line number where one makes sense). The injectable
 * failure is the `store.manifest` fault site.
 */

#ifndef PGB_STORE_MANIFEST_HPP
#define PGB_STORE_MANIFEST_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pgb::store {

/** One shard artifact listed by a manifest. */
struct ShardEntry
{
    std::string file;     ///< path relative to the manifest
    uint64_t bytes = 0;   ///< artifact file size (stat'd at open)
    uint64_t digest = 0;  ///< the artifact's section-table checksum
    uint64_t nodes = 0;   ///< local node count
    uint64_t paths = 0;   ///< embedded path count (0 = never seeded)
};

/** One connected component and where it lives. */
struct ComponentEntry
{
    uint32_t shard = 0;  ///< index into ShardManifest::shards
    uint64_t nodes = 0;  ///< node count (sum of range sizes)
    /** Inclusive global node-id ranges, ascending and disjoint. */
    std::vector<std::pair<uint32_t, uint32_t>> ranges;
};

/** A parsed, validated `.pgbs` manifest. */
struct ShardManifest
{
    // -- `meta` line: the monolith's scalar facts.
    uint64_t nodeCount = 0;
    uint64_t edgeCount = 0;
    uint64_t pathCount = 0;
    uint64_t totalBases = 0;
    uint32_t k = 0, w = 0;
    std::string seeder;    ///< "minimizer" | "mem" (FM sections iff mem)
    bool hasGbwt = false;

    std::vector<ShardEntry> shards;
    std::vector<ComponentEntry> components;

    std::string path; ///< the manifest's own path, for diagnostics

    /** Absolute-or-manifest-relative path of shard @p index. */
    std::string shardPath(size_t index) const;

    /**
     * Parse and validate the manifest at @p manifest_path: version,
     * trailer checksum, routing coverage, and a stat of every listed
     * shard file (existence + size). Throws FatalError on the first
     * violation. Fault site: store.manifest.
     */
    static ShardManifest load(const std::string &manifest_path);

    /**
     * Write the manifest (atomic: temp file + rename), appending the
     * FNV-1a 64 trailer over the preceding bytes.
     */
    void save(const std::string &manifest_path) const;
};

/**
 * Global-node routing built from a manifest's component ranges:
 * binary-searchable intervals mapping a global node id to its shard
 * and shard-local node id. Local ids follow ascending global order
 * within a shard, so `localBase + (node - lo)` inverts the shard
 * builder's renumbering exactly.
 */
class ShardRouter
{
  public:
    /** A routed global node. */
    struct Route
    {
        uint32_t shard = 0;
        uint32_t local = 0;
    };

    explicit ShardRouter(const ShardManifest &manifest);

    /** Route @p node; fatal if no component covers it. */
    Route route(uint32_t node) const;

    /** Global node id of @p local in @p shard; fatal if out of range. */
    uint32_t globalOf(uint32_t shard, uint32_t local) const;

  private:
    struct Interval
    {
        uint32_t lo = 0, hi = 0; ///< inclusive global node-id range
        uint32_t shard = 0;
        uint32_t localBase = 0;  ///< local id of `lo` within the shard
    };

    std::string path_; ///< manifest path, for diagnostics
    std::vector<Interval> intervals_;             ///< sorted by lo
    std::vector<std::vector<Interval>> byShard_;  ///< sorted by localBase
};

} // namespace pgb::store

#endif // PGB_STORE_MANIFEST_HPP
