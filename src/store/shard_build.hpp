/**
 * @file
 * `pgb shard`: partition a built pangenome into a `.pgbs` shard set.
 *
 * Connected components are the partition unit — no edge, path, or
 * alignment task ever crosses a component boundary, so a component can
 * be mapped against in isolation. Components (ordered by their minimum
 * global node id) are greedily grouped into bins of roughly
 * `targetShardMb` estimated megabytes; each bin becomes one `.pgbi`
 * shard artifact carrying the SNOD/SLIN projection sections, and the
 * manifest (manifest.hpp) records the set.
 *
 * The renumbering is order-preserving: a shard's local node ids follow
 * ascending global id order, its edges replay the monolith's adjacency,
 * and its paths keep the monolith's path order. Per-shard indexes built
 * over such a shard reproduce the monolith's index restricted to the
 * shard exactly — the property the byte-identity guarantee
 * (DESIGN.md §13) rests on.
 */

#ifndef PGB_STORE_SHARD_BUILD_HPP
#define PGB_STORE_SHARD_BUILD_HPP

#include <cstdint>
#include <string>

#include "graph/pangraph.hpp"
#include "store/manifest.hpp"

namespace pgb::store {

/** Knobs for buildShardSet (CLI defaults match `pgb index`). */
struct ShardBuildParams
{
    int k = 15;
    int w = 10;
    unsigned threads = 1;
    std::string seeder = "minimizer"; ///< "minimizer" | "mem"
    uint32_t fmSampleRate = 8;        ///< SA sampling when seeder=mem
    /** Target shard size in MiB (estimated); 0 = one shard per
     *  component. */
    uint64_t targetShardMb = 256;
};

/**
 * Partition @p graph by connected component, write one `.pgbi` shard
 * per bin next to @p manifest_path (named `<stem>.shard<i>.pgbi`), and
 * write the manifest itself. Fatal on a pathless graph — shard sets
 * are seeded along embedded paths, like the monolithic index.
 * @return the saved manifest.
 */
ShardManifest buildShardSet(const graph::PanGraph &graph,
                            const ShardBuildParams &params,
                            const std::string &manifest_path);

} // namespace pgb::store

#endif // PGB_STORE_SHARD_BUILD_HPP
