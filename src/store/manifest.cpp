#include "store/manifest.hpp"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <sys/stat.h>

#include "core/fault.hpp"
#include "core/io.hpp"
#include "core/logging.hpp"
#include "obs/metrics.hpp"
#include "store/format.hpp"

namespace pgb::store {

namespace {

using core::fatal;

core::FaultSite faultManifest(
    "store.manifest",
    "FatalError, non-zero CLI exit; shard set fails closed");

obs::Counter obsManifestLoads("store.manifests_loaded");
obs::Counter obsManifestWrites("store.manifests_written");

/** The directory part of @p path ("" for a bare filename). */
std::string
dirOf(const std::string &path)
{
    const size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash + 1);
}

/** Split a manifest line into whitespace-separated tokens. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream stream(line);
    std::string token;
    while (stream >> token)
        tokens.push_back(token);
    return tokens;
}

/**
 * Field accessor for `key=value` tokens. Missing or duplicate keys
 * and malformed values are reported against the manifest line.
 */
class Fields
{
  public:
    Fields(const std::string &path, size_t line,
           const std::vector<std::string> &tokens, size_t first)
        : path_(path), line_(line)
    {
        for (size_t t = first; t < tokens.size(); ++t) {
            const size_t eq = tokens[t].find('=');
            if (eq == std::string::npos || eq == 0)
                fatal(path_, ": line ", line_, ": bad field '",
                      tokens[t], "'");
            fields_.emplace_back(tokens[t].substr(0, eq),
                                 tokens[t].substr(eq + 1));
        }
    }

    std::string
    str(const char *key) const
    {
        for (const auto &[k, v] : fields_) {
            if (k == key)
                return v;
        }
        fatal(path_, ": line ", line_, ": missing field '", key, "'");
    }

    uint64_t
    num(const char *key) const
    {
        const std::string value = str(key);
        errno = 0;
        char *end = nullptr;
        const uint64_t parsed =
            std::strtoull(value.c_str(), &end, 10);
        if (errno != 0 || end == value.c_str() || *end != '\0')
            fatal(path_, ": line ", line_, ": bad number '", value,
                  "' for field '", key, "'");
        return parsed;
    }

    uint64_t
    hex(const char *key) const
    {
        const std::string value = str(key);
        errno = 0;
        char *end = nullptr;
        const uint64_t parsed =
            std::strtoull(value.c_str(), &end, 16);
        if (errno != 0 || end == value.c_str() || *end != '\0')
            fatal(path_, ": line ", line_, ": bad digest '", value,
                  "' for field '", key, "'");
        return parsed;
    }

  private:
    const std::string &path_;
    size_t line_;
    std::vector<std::pair<std::string, std::string>> fields_;
};

std::string
hex16(uint64_t value)
{
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016" PRIx64, value);
    return buffer;
}

/** Parse "lo-hi[,lo-hi...]" into inclusive ranges. */
std::vector<std::pair<uint32_t, uint32_t>>
parseRanges(const std::string &path, size_t line,
            const std::string &text)
{
    std::vector<std::pair<uint32_t, uint32_t>> ranges;
    size_t at = 0;
    while (at < text.size()) {
        size_t comma = text.find(',', at);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string part = text.substr(at, comma - at);
        const size_t dash = part.find('-');
        errno = 0;
        char *end = nullptr;
        const uint64_t lo =
            std::strtoull(part.c_str(), &end, 10);
        bool ok = dash != std::string::npos && errno == 0 &&
                  end == part.c_str() + dash;
        uint64_t hi = 0;
        if (ok) {
            const char *hi_text = part.c_str() + dash + 1;
            hi = std::strtoull(hi_text, &end, 10);
            ok = errno == 0 && end != hi_text && *end == '\0' &&
                 lo <= hi && hi <= UINT32_MAX;
        }
        if (!ok)
            fatal(path, ": line ", line, ": bad node range '", part,
                  "'");
        ranges.emplace_back(static_cast<uint32_t>(lo),
                            static_cast<uint32_t>(hi));
        at = comma + 1;
    }
    if (ranges.empty())
        fatal(path, ": line ", line, ": empty node range list");
    return ranges;
}

} // namespace

std::string
ShardManifest::shardPath(size_t index) const
{
    const std::string &file = shards[index].file;
    if (!file.empty() && file[0] == '/')
        return file;
    return dirOf(path) + file;
}

ShardManifest
ShardManifest::load(const std::string &manifest_path)
{
    if (faultManifest.fire())
        fatal(manifest_path, ": cannot open: injected fault");

    std::ifstream input(manifest_path, std::ios::binary);
    if (!input.good())
        fatal(manifest_path, ": cannot open manifest");
    std::ostringstream slurped;
    slurped << input.rdbuf();
    const std::string text = slurped.str();

    // ---- Trailer first: nothing else is trustworthy until the
    // checksum over every preceding byte has passed.
    const size_t trailer = text.rfind("checksum ");
    if (trailer == std::string::npos ||
        (trailer != 0 && text[trailer - 1] != '\n'))
        fatal(manifest_path, ": manifest has no checksum trailer");
    {
        const size_t eol = text.find('\n', trailer);
        const std::string claimed = text.substr(
            trailer + 9,
            (eol == std::string::npos ? text.size() : eol) -
                trailer - 9);
        errno = 0;
        char *end = nullptr;
        const uint64_t parsed =
            std::strtoull(claimed.c_str(), &end, 16);
        if (errno != 0 || end == claimed.c_str() || *end != '\0' ||
            parsed != fnv1a64(text.data(), trailer))
            fatal(manifest_path,
                  ": manifest corrupt (checksum mismatch)");
    }

    ShardManifest manifest;
    manifest.path = manifest_path;

    // ---- Line-by-line parse of the checksummed body.
    std::istringstream body(text.substr(0, trailer));
    std::string line;
    size_t line_number = 0;
    bool saw_meta = false;
    uint64_t claimed_shards = 0, claimed_components = 0;
    while (std::getline(body, line)) {
        ++line_number;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        const auto tokens = tokenize(line);
        if (line_number == 1) {
            if (tokens.size() != 2 || tokens[0] != "pgbs")
                fatal(manifest_path,
                      ": line 1: not a .pgbs manifest");
            if (tokens[1] != "1")
                fatal(manifest_path, ": manifest version ", tokens[1],
                      " unsupported (this build reads version 1)");
            continue;
        }
        if (tokens.empty())
            continue;
        if (tokens[0] == "meta") {
            if (saw_meta)
                fatal(manifest_path, ": line ", line_number,
                      ": duplicate meta line");
            saw_meta = true;
            const Fields fields(manifest_path, line_number, tokens, 1);
            manifest.nodeCount = fields.num("nodes");
            manifest.edgeCount = fields.num("edges");
            manifest.pathCount = fields.num("paths");
            manifest.totalBases = fields.num("bases");
            manifest.k = static_cast<uint32_t>(fields.num("k"));
            manifest.w = static_cast<uint32_t>(fields.num("w"));
            manifest.seeder = fields.str("seeder");
            manifest.hasGbwt = fields.num("gbwt") != 0;
            claimed_shards = fields.num("shards");
            claimed_components = fields.num("components");
            if (manifest.seeder != "minimizer" &&
                manifest.seeder != "mem")
                fatal(manifest_path, ": line ", line_number,
                      ": unknown seeder '", manifest.seeder, "'");
        } else if (tokens[0] == "shard") {
            if (tokens.size() < 2)
                fatal(manifest_path, ": line ", line_number,
                      ": bad shard line");
            const Fields fields(manifest_path, line_number, tokens, 2);
            const uint64_t index =
                std::strtoull(tokens[1].c_str(), nullptr, 10);
            if (index != manifest.shards.size())
                fatal(manifest_path, ": line ", line_number,
                      ": shard ", tokens[1], " out of order (expected ",
                      manifest.shards.size(), ")");
            ShardEntry entry;
            entry.file = fields.str("file");
            entry.bytes = fields.num("bytes");
            entry.digest = fields.hex("digest");
            entry.nodes = fields.num("nodes");
            entry.paths = fields.num("paths");
            if (entry.file.empty())
                fatal(manifest_path, ": line ", line_number,
                      ": shard ", tokens[1], " has an empty file");
            manifest.shards.push_back(std::move(entry));
        } else if (tokens[0] == "component") {
            if (tokens.size() < 2)
                fatal(manifest_path, ": line ", line_number,
                      ": bad component line");
            const Fields fields(manifest_path, line_number, tokens, 2);
            const uint64_t index =
                std::strtoull(tokens[1].c_str(), nullptr, 10);
            if (index < manifest.components.size())
                fatal(manifest_path, ": line ", line_number,
                      ": duplicate component ", tokens[1]);
            if (index != manifest.components.size())
                fatal(manifest_path, ": line ", line_number,
                      ": component ", tokens[1],
                      " out of order (expected ",
                      manifest.components.size(), ")");
            ComponentEntry entry;
            entry.shard = static_cast<uint32_t>(fields.num("shard"));
            entry.nodes = fields.num("nodes");
            entry.ranges = parseRanges(manifest_path, line_number,
                                       fields.str("ranges"));
            uint64_t counted = 0;
            for (const auto &[lo, hi] : entry.ranges)
                counted += static_cast<uint64_t>(hi) - lo + 1;
            if (counted != entry.nodes)
                fatal(manifest_path, ": line ", line_number,
                      ": component ", tokens[1], " claims ",
                      entry.nodes, " nodes, ranges hold ", counted);
            manifest.components.push_back(std::move(entry));
        } else {
            fatal(manifest_path, ": line ", line_number,
                  ": unrecognized manifest line");
        }
    }
    if (!saw_meta)
        fatal(manifest_path, ": manifest has no meta line");
    if (manifest.shards.size() != claimed_shards)
        fatal(manifest_path, ": meta claims ", claimed_shards,
              " shards, manifest lists ", manifest.shards.size());
    if (manifest.components.size() != claimed_components)
        fatal(manifest_path, ": meta claims ", claimed_components,
              " components, manifest lists ",
              manifest.components.size());
    if (manifest.shards.empty())
        fatal(manifest_path, ": manifest lists no shards");

    // ---- Cross-entry validation: routing must reference listed
    // shards, per-shard node counts must add up, and the component
    // ranges must tile [0, nodeCount) exactly.
    std::vector<uint64_t> shard_nodes(manifest.shards.size(), 0);
    std::vector<std::pair<uint32_t, uint32_t>> all_ranges;
    for (size_t c = 0; c < manifest.components.size(); ++c) {
        const ComponentEntry &component = manifest.components[c];
        if (component.shard >= manifest.shards.size())
            fatal(manifest_path, ": component ", c,
                  " routed to unknown shard ", component.shard);
        shard_nodes[component.shard] += component.nodes;
        all_ranges.insert(all_ranges.end(), component.ranges.begin(),
                          component.ranges.end());
    }
    for (size_t s = 0; s < manifest.shards.size(); ++s) {
        if (shard_nodes[s] != manifest.shards[s].nodes)
            fatal(manifest_path, ": shard ", s, " claims ",
                  manifest.shards[s].nodes,
                  " nodes, its components hold ", shard_nodes[s]);
    }
    std::sort(all_ranges.begin(), all_ranges.end());
    uint64_t covered = 0;
    for (size_t r = 0; r < all_ranges.size(); ++r) {
        if (r > 0 && all_ranges[r].first <= all_ranges[r - 1].second)
            fatal(manifest_path, ": component ranges overlap at node ",
                  all_ranges[r].first);
        covered += static_cast<uint64_t>(all_ranges[r].second) -
                   all_ranges[r].first + 1;
    }
    if (covered != manifest.nodeCount ||
        (covered > 0 &&
         (all_ranges.front().first != 0 ||
          all_ranges.back().second != manifest.nodeCount - 1)))
        fatal(manifest_path, ": component ranges cover ", covered,
              " of ", manifest.nodeCount, " nodes");

    // ---- Shard files must exist with the recorded size; content is
    // digest-verified lazily, when a shard is first mapped in.
    for (size_t s = 0; s < manifest.shards.size(); ++s) {
        const std::string shard_path = manifest.shardPath(s);
        struct stat info = {};
        if (::stat(shard_path.c_str(), &info) != 0)
            fatal(manifest_path, ": missing shard file '", shard_path,
                  "'");
        if (static_cast<uint64_t>(info.st_size) !=
            manifest.shards[s].bytes)
            fatal(manifest_path, ": shard file '", shard_path,
                  "' holds ", static_cast<uint64_t>(info.st_size),
                  " bytes, expected ", manifest.shards[s].bytes);
    }

    obsManifestLoads.add();
    return manifest;
}

void
ShardManifest::save(const std::string &manifest_path) const
{
    std::ostringstream body;
    body << "pgbs 1\n";
    body << "meta nodes=" << nodeCount << " edges=" << edgeCount
         << " paths=" << pathCount << " bases=" << totalBases
         << " k=" << k << " w=" << w << " seeder=" << seeder
         << " gbwt=" << (hasGbwt ? 1 : 0) << " shards=" << shards.size()
         << " components=" << components.size() << "\n";
    for (size_t s = 0; s < shards.size(); ++s) {
        const ShardEntry &shard = shards[s];
        body << "shard " << s << " file=" << shard.file
             << " bytes=" << shard.bytes
             << " digest=" << hex16(shard.digest)
             << " nodes=" << shard.nodes << " paths=" << shard.paths
             << "\n";
    }
    for (size_t c = 0; c < components.size(); ++c) {
        const ComponentEntry &component = components[c];
        body << "component " << c << " shard=" << component.shard
             << " nodes=" << component.nodes << " ranges=";
        for (size_t r = 0; r < component.ranges.size(); ++r) {
            if (r > 0)
                body << ",";
            body << component.ranges[r].first << "-"
                 << component.ranges[r].second;
        }
        body << "\n";
    }
    const std::string bytes = body.str();

    const std::string tmp_path = manifest_path + ".tmp";
    try {
        core::CheckedWriter out(tmp_path);
        out.stream().write(bytes.data(),
                           static_cast<std::streamsize>(bytes.size()));
        const std::string trailer =
            "checksum " + hex16(fnv1a64(bytes.data(), bytes.size())) +
            "\n";
        out.stream().write(trailer.data(),
                           static_cast<std::streamsize>(
                               trailer.size()));
        out.finish();
    } catch (...) {
        std::remove(tmp_path.c_str());
        throw;
    }
    if (std::rename(tmp_path.c_str(), manifest_path.c_str()) != 0) {
        const int err = errno;
        std::remove(tmp_path.c_str());
        fatal(manifest_path,
              ": cannot rename temp manifest into place: ",
              std::strerror(err));
    }
    obsManifestWrites.add();
}

// ---------------------------------------------------------------------
// ShardRouter
// ---------------------------------------------------------------------

ShardRouter::ShardRouter(const ShardManifest &manifest)
    : path_(manifest.path), byShard_(manifest.shards.size())
{
    for (const ComponentEntry &component : manifest.components) {
        for (const auto &[lo, hi] : component.ranges)
            intervals_.push_back({lo, hi, component.shard, 0});
    }
    std::sort(intervals_.begin(), intervals_.end(),
              [](const Interval &a, const Interval &b) {
                  return a.lo < b.lo;
              });
    // Local ids follow ascending global order within a shard, so the
    // local base of an interval is the number of same-shard nodes in
    // the intervals before it.
    std::vector<uint32_t> running(manifest.shards.size(), 0);
    for (Interval &interval : intervals_) {
        interval.localBase = running[interval.shard];
        running[interval.shard] += interval.hi - interval.lo + 1;
        byShard_[interval.shard].push_back(interval);
    }
}

ShardRouter::Route
ShardRouter::route(uint32_t node) const
{
    const auto it = std::upper_bound(
        intervals_.begin(), intervals_.end(), node,
        [](uint32_t value, const Interval &interval) {
            return value < interval.lo;
        });
    if (it == intervals_.begin() || node > (it - 1)->hi)
        core::fatal(path_, ": node ", node,
                    " is not covered by any shard component");
    const Interval &interval = *(it - 1);
    return {interval.shard,
            interval.localBase + (node - interval.lo)};
}

uint32_t
ShardRouter::globalOf(uint32_t shard, uint32_t local) const
{
    if (shard >= byShard_.size())
        core::fatal(path_, ": shard ", shard, " out of range");
    const auto &intervals = byShard_[shard];
    const auto it = std::upper_bound(
        intervals.begin(), intervals.end(), local,
        [](uint32_t value, const Interval &interval) {
            return value < interval.localBase;
        });
    if (it == intervals.begin() ||
        local > (it - 1)->localBase + ((it - 1)->hi - (it - 1)->lo))
        core::fatal(path_, ": shard ", shard, " local node ", local,
                    " out of range");
    const Interval &interval = *(it - 1);
    return interval.lo + (local - interval.localBase);
}

} // namespace pgb::store
