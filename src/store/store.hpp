/**
 * @file
 * Build-once/map-many persistence: write and load `.pgbi` artifacts.
 *
 * Every `pgb map` used to re-parse GFA text and rebuild the minimizer
 * index and GBWT from scratch, so index construction dominated any
 * serving scenario. Real pangenome tooling persists its indexes
 * (minigraph's rGFA graphs, ropebwt3's FM-indexes, vg's .xg/.gbwt
 * files); `pgb::store` is the suite's equivalent: `writeArtifact`
 * serializes a graph plus its two indexes into one versioned,
 * checksummed container (format.hpp), and `Artifact::load`
 * memory-maps it back. The minimizer table and hit sections are
 * reconstructed as zero-copy std::span views over the mapping; the
 * graph and GBWT (nested-vector layouts) take one linear bulk copy.
 *
 * Failure contract (DESIGN.md §6): writing goes through
 * core::CheckedWriter into a temp file that is renamed over the
 * target only after a verified flush, so a failed write never leaves
 * a partial artifact. Loading fails closed: bad magic, wrong version,
 * foreign endianness, truncation, an out-of-bounds section table, or
 * a payload checksum mismatch are all one-line FatalErrors. Fault
 * sites store.{open,mmap,section,checksum} inject each class.
 */

#ifndef PGB_STORE_STORE_HPP
#define PGB_STORE_STORE_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/arena.hpp"
#include "graph/pangraph.hpp"
#include "index/fm_index.hpp"
#include "index/gbwt.hpp"
#include "index/minimizer.hpp"

namespace pgb::store {

/**
 * Per-node shard-set projection written into SNOD/SLIN sections when a
 * `.pgbi` artifact is one shard of a larger pangenome: for every local
 * node, the global node id it renames and the monolith linearization
 * base of that node. Both vectors must hold exactly nodeCount entries.
 */
struct ShardExtras
{
    std::vector<uint32_t> origNodes;   ///< local node -> global node id
    std::vector<uint64_t> linearBases; ///< local node -> monolith prefix
};

/**
 * Serialize @p graph, @p minimizers, and optionally @p gbwt and @p fm
 * into the `.pgbi` artifact at @p path (atomic: temp file + rename).
 * Throws FatalError on any write failure, leaving no partial file at
 * @p path. When @p extras is non-null the shard projection sections
 * (SNOD/SLIN) are appended — the artifact then opens both standalone
 * and as a member of a `.pgbs` shard set.
 */
void writeArtifact(const std::string &path,
                   const graph::PanGraph &graph,
                   const index::MinimizerIndex &minimizers,
                   const index::GbwtIndex *gbwt,
                   const index::FmIndex *fm = nullptr,
                   const ShardExtras *extras = nullptr);

/**
 * Read just the header of the artifact at @p path and return its
 * section-table checksum — the 64-bit digest that transitively commits
 * to every payload byte (each table entry checksums its payload). The
 * shard manifest records this per shard, so identity can be verified
 * without a full load. Throws FatalError on a missing or truncated
 * file or bad magic.
 */
uint64_t readTableChecksum(const std::string &path);

/** A loaded, immutable `.pgbi` artifact. */
class Artifact
{
  public:
    /**
     * Map and validate the artifact at @p path. Throws FatalError
     * ("<path>: <what>") on any structural or checksum violation.
     */
    static std::unique_ptr<Artifact> load(const std::string &path);

    const graph::PanGraph &graph() const { return graph_; }

    /** Zero-copy view index; valid for the artifact's lifetime. */
    const index::MinimizerIndex &minimizers() const
    {
        return *minimizers_;
    }

    /** GBWT, or nullptr when the artifact was written without one. */
    const index::GbwtIndex *gbwt() const { return gbwt_.get(); }

    /**
     * Zero-copy view FM-index, or nullptr when the artifact was
     * written without one (`pgb index` without `--seeder=mem`).
     */
    const index::FmIndex *fmIndex() const { return fm_.get(); }

    int k() const { return k_; }
    int w() const { return w_; }
    const std::string &path() const { return path_; }

    /** Total mapped bytes (the file size). */
    size_t sizeBytes() const { return arena_.size(); }

    /** The header's section-table checksum (the artifact's digest). */
    uint64_t tableChecksum() const { return tableChecksum_; }

    /**
     * Shard projection: local node -> global node id (SNOD section),
     * or an empty span when the artifact is not a shard.
     */
    std::span<const uint32_t> origNodes() const { return origNodes_; }

    /** Shard projection: local node -> monolith linearization base. */
    std::span<const uint64_t> linearBases() const
    {
        return linearBases_;
    }

    /** Whether the artifact carries the SNOD/SLIN shard sections. */
    bool isShard() const { return !origNodes_.empty(); }

    Artifact(const Artifact &) = delete;
    Artifact &operator=(const Artifact &) = delete;

  private:
    Artifact() : arena_(core::Arena::Mode::kInMemory) {}

    core::Arena arena_; ///< read-only mapping; spans point into it
    std::string path_;
    int k_ = 0, w_ = 0;
    uint64_t tableChecksum_ = 0;
    std::span<const uint32_t> origNodes_;
    std::span<const uint64_t> linearBases_;
    graph::PanGraph graph_;
    std::unique_ptr<index::MinimizerIndex> minimizers_;
    std::unique_ptr<index::GbwtIndex> gbwt_;
    std::unique_ptr<index::FmIndex> fm_;
};

} // namespace pgb::store

#endif // PGB_STORE_STORE_HPP
