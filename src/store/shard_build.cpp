#include "store/shard_build.hpp"

#include <algorithm>
#include <numeric>

#include <sys/stat.h>

#include "core/logging.hpp"
#include "index/fm_index.hpp"
#include "index/gbwt.hpp"
#include "index/minimizer.hpp"
#include "obs/metrics.hpp"
#include "store/store.hpp"

namespace pgb::store {

namespace {

using core::fatal;

obs::Counter obsShardsBuilt("store.shards_built");

/** Path-compressed union-find over node ids. */
class UnionFind
{
  public:
    explicit UnionFind(size_t n) : parent_(n)
    {
        std::iota(parent_.begin(), parent_.end(), 0u);
    }

    uint32_t
    find(uint32_t x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void
    unite(uint32_t a, uint32_t b)
    {
        a = find(a);
        b = find(b);
        if (a != b)
            parent_[std::max(a, b)] = std::min(a, b);
    }

  private:
    std::vector<uint32_t> parent_;
};

/** "dir/name.pgbs" -> "dir/name"; no-op without the extension. */
std::string
stemOf(const std::string &manifest_path)
{
    const std::string ext = ".pgbs";
    if (manifest_path.size() > ext.size() &&
        manifest_path.compare(manifest_path.size() - ext.size(),
                              ext.size(), ext) == 0)
        return manifest_path.substr(0,
                                    manifest_path.size() - ext.size());
    return manifest_path;
}

std::string
basenameOf(const std::string &path)
{
    const size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

/** Inclusive ranges of an ascending id list. */
std::vector<std::pair<uint32_t, uint32_t>>
compressRanges(const std::vector<uint32_t> &nodes)
{
    std::vector<std::pair<uint32_t, uint32_t>> ranges;
    for (uint32_t node : nodes) {
        if (!ranges.empty() && ranges.back().second + 1 == node)
            ranges.back().second = node;
        else
            ranges.emplace_back(node, node);
    }
    return ranges;
}

} // namespace

ShardManifest
buildShardSet(const graph::PanGraph &graph,
              const ShardBuildParams &params,
              const std::string &manifest_path)
{
    if (params.seeder != "minimizer" && params.seeder != "mem")
        fatal("pgb shard: unknown seeder '", params.seeder,
              "' (expected minimizer or mem)");
    if (graph.pathCount() == 0)
        fatal(manifest_path,
              ": cannot shard a pathless pangenome; shard sets are "
              "seeded along embedded paths (add P lines or use the "
              "monolithic `pgb index`)");

    const size_t node_count = graph.nodeCount();

    // ---- Connected components over the bidirected adjacency. An edge
    // links its two nodes regardless of orientation, so both
    // orientations of a node always land in the same component.
    UnionFind uf(node_count);
    for (uint32_t node = 0; node < node_count; ++node) {
        for (bool reverse : {false, true}) {
            const graph::Handle handle(node, reverse);
            for (const graph::Handle succ : graph.successors(handle))
                uf.unite(node, succ.node());
        }
    }

    // Components ordered by their minimum global node id (the
    // union-find root, since unite() keeps the smaller id as root).
    std::vector<uint32_t> componentOf(node_count);
    std::vector<std::vector<uint32_t>> componentNodes;
    {
        std::vector<uint32_t> rootToComponent(node_count, UINT32_MAX);
        for (uint32_t node = 0; node < node_count; ++node) {
            const uint32_t root = uf.find(node);
            if (rootToComponent[root] == UINT32_MAX) {
                rootToComponent[root] =
                    static_cast<uint32_t>(componentNodes.size());
                componentNodes.emplace_back();
            }
            componentOf[node] = rootToComponent[root];
            componentNodes[rootToComponent[root]].push_back(node);
        }
    }

    // ---- Size estimate per component: sequence bytes dominate; the
    // per-node/per-step constants approximate section overhead.
    std::vector<uint64_t> componentBytes(componentNodes.size(), 0);
    for (size_t c = 0; c < componentNodes.size(); ++c) {
        for (uint32_t node : componentNodes[c])
            componentBytes[c] += graph.nodeLength(node) + 48;
    }
    for (graph::PathId path = 0; path < graph.pathCount(); ++path) {
        const auto &steps = graph.pathSteps(path);
        componentBytes[componentOf[steps.front().node()]] +=
            steps.size() * 16;
    }

    // ---- Greedy consecutive binning in component order.
    const uint64_t target_bytes = params.targetShardMb * (1ull << 20);
    std::vector<uint32_t> shardOfComponent(componentNodes.size(), 0);
    uint32_t shard_count = 0;
    {
        uint64_t bin_bytes = 0;
        bool bin_open = false;
        for (size_t c = 0; c < componentNodes.size(); ++c) {
            const bool close = !bin_open ? false
                : target_bytes == 0 ||
                  bin_bytes + componentBytes[c] > target_bytes;
            if (close) {
                ++shard_count;
                bin_bytes = 0;
            }
            shardOfComponent[c] = shard_count;
            bin_bytes += componentBytes[c];
            bin_open = true;
        }
        if (bin_open)
            ++shard_count;
    }

    // ---- Monolith facts every shard needs: linearization bases (for
    // SLIN; the same prefix sum pipeline::GraphLinearization computes)
    // and the overall stats (for the manifest meta line).
    std::vector<uint64_t> linearBase(node_count);
    {
        uint64_t running = 0;
        for (uint32_t node = 0; node < node_count; ++node) {
            linearBase[node] = running;
            running += graph.nodeLength(node);
        }
    }
    const graph::GraphStats stats = graph.stats();

    ShardManifest manifest;
    manifest.nodeCount = stats.nodeCount;
    manifest.edgeCount = stats.edgeCount;
    manifest.pathCount = stats.pathCount;
    manifest.totalBases = stats.totalBases;
    manifest.k = static_cast<uint32_t>(params.k);
    manifest.w = static_cast<uint32_t>(params.w);
    manifest.seeder = params.seeder;
    manifest.hasGbwt = true;
    manifest.path = manifest_path;

    for (size_t c = 0; c < componentNodes.size(); ++c) {
        ComponentEntry entry;
        entry.shard = shardOfComponent[c];
        entry.nodes = componentNodes[c].size();
        entry.ranges = compressRanges(componentNodes[c]);
        manifest.components.push_back(std::move(entry));
    }

    // ---- Emit each shard: an order-preserving renumbering of its
    // components' nodes, the replayed adjacency, the monolith-order
    // paths, per-shard indexes, and the SNOD/SLIN projection.
    const std::string stem = stemOf(manifest_path);
    std::vector<uint32_t> globalToLocal(node_count, 0);
    for (uint32_t shard = 0; shard < shard_count; ++shard) {
        std::vector<uint32_t> globals;
        for (size_t c = 0; c < componentNodes.size(); ++c) {
            if (shardOfComponent[c] != shard)
                continue;
            globals.insert(globals.end(), componentNodes[c].begin(),
                           componentNodes[c].end());
        }
        std::sort(globals.begin(), globals.end());

        graph::PanGraph shard_graph;
        ShardExtras extras;
        extras.origNodes = globals;
        extras.linearBases.reserve(globals.size());
        for (size_t local = 0; local < globals.size(); ++local) {
            globalToLocal[globals[local]] =
                static_cast<uint32_t>(local);
            shard_graph.addNode(graph.nodeSequence(globals[local]));
            extras.linearBases.push_back(linearBase[globals[local]]);
        }
        // addEdge dedupes and mirrors, so replaying every oriented
        // successor list reproduces the monolith's edge set exactly.
        for (uint32_t global : globals) {
            for (bool reverse : {false, true}) {
                const graph::Handle from(global, reverse);
                for (const graph::Handle to :
                     graph.successors(from)) {
                    shard_graph.addEdge(
                        graph::Handle(globalToLocal[global], reverse),
                        graph::Handle(globalToLocal[to.node()],
                                      to.isReverse()));
                }
            }
        }
        for (graph::PathId path = 0; path < graph.pathCount();
             ++path) {
            const auto &steps = graph.pathSteps(path);
            if (shardOfComponent[componentOf[steps.front().node()]] !=
                shard)
                continue;
            std::vector<graph::Handle> local_steps;
            local_steps.reserve(steps.size());
            for (const graph::Handle step : steps)
                local_steps.emplace_back(globalToLocal[step.node()],
                                         step.isReverse());
            shard_graph.addPath(graph.pathName(path),
                                std::move(local_steps));
        }

        // A monolith with embedded paths indexes along paths only, so
        // a pathless shard contributes nothing to seeding: it gets an
        // empty view index (never the per-node fallback, which would
        // invent seeds the monolith does not have) and no GBWT/FM.
        std::unique_ptr<index::MinimizerIndex> minimizers;
        std::unique_ptr<index::GbwtIndex> gbwt;
        std::unique_ptr<index::FmIndex> fm;
        if (shard_graph.pathCount() > 0) {
            minimizers = std::make_unique<index::MinimizerIndex>(
                shard_graph, params.k, params.w, params.threads);
            gbwt = std::make_unique<index::GbwtIndex>(shard_graph,
                                                      true,
                                                      params.threads);
            if (params.seeder == "mem")
                fm = std::make_unique<index::FmIndex>(
                    shard_graph, params.fmSampleRate);
        } else {
            minimizers = std::make_unique<index::MinimizerIndex>(
                params.k, params.w,
                std::span<const index::MinimizerIndex::TableEntry>(),
                std::span<const index::GraphSeedHit>());
        }

        const std::string file =
            basenameOf(stem) + ".shard" + std::to_string(shard) +
            ".pgbi";
        const std::string shard_path =
            stem + ".shard" + std::to_string(shard) + ".pgbi";
        writeArtifact(shard_path, shard_graph, *minimizers, gbwt.get(),
                      fm.get(), &extras);

        ShardEntry entry;
        entry.file = file;
        entry.digest = readTableChecksum(shard_path);
        entry.nodes = globals.size();
        entry.paths = shard_graph.pathCount();
        struct stat info = {};
        if (::stat(shard_path.c_str(), &info) != 0)
            fatal(shard_path, ": cannot stat freshly written shard");
        entry.bytes = static_cast<uint64_t>(info.st_size);
        manifest.shards.push_back(std::move(entry));
        obsShardsBuilt.add();
    }

    manifest.save(manifest_path);
    return manifest;
}

} // namespace pgb::store
