/**
 * @file
 * On-disk layout of the `.pgbi` artifact (DESIGN.md §9).
 *
 * A `.pgbi` file is a fixed header, a section table, and 8-byte
 * aligned section payloads. Every multi-byte field is native-endian;
 * the header carries an endianness tag so a file moved to a machine
 * of the other sex fails closed instead of deserializing garbage.
 * Every section payload is checksummed (FNV-1a 64) and verified at
 * load, so a flipped bit anywhere in the payload is a one-line fatal,
 * never a crash deep inside the mapper.
 *
 * Version-bump rules: kFormatVersion changes whenever the header, the
 * section table, a section's record layout, or the meaning of an
 * existing field changes. Adding a new optional section does NOT bump
 * the version (readers ignore unknown tags); everything else does.
 */

#ifndef PGB_STORE_FORMAT_HPP
#define PGB_STORE_FORMAT_HPP

#include <cstddef>
#include <cstdint>

namespace pgb::store {

/** PNG-style magic: binary sniff + CRLF/text-mode corruption canary. */
constexpr uint8_t kMagic[8] = {0x89, 'P', 'G', 'B', 'I', '\r', '\n',
                               0x1a};

/** Bumped on any layout or semantics change (see file comment). */
constexpr uint32_t kFormatVersion = 1;

/** Written as-is; reads as 0x04030201 on the other endianness. */
constexpr uint32_t kEndianTag = 0x01020304;

/** Sanity cap: a garbage section count must not drive allocation. */
constexpr uint64_t kMaxSections = 64;

/** All payloads start on an 8-byte boundary. */
constexpr size_t kSectionAlign = 8;

/** Fixed-size file header at offset 0. */
struct Header
{
    uint8_t magic[8];
    uint32_t version;
    uint32_t endian;
    uint64_t sectionCount;
    uint64_t fileBytes;      ///< total file size (truncation canary)
    uint64_t tableChecksum;  ///< FNV-1a 64 of the section table bytes
    uint8_t reserved[24];
};

static_assert(sizeof(Header) == 64, ".pgbi header is 64 bytes");

/** One section-table entry, immediately after the header. */
struct SectionDesc
{
    uint32_t tag;      ///< fourcc, see below
    uint32_t reserved; ///< 0
    uint64_t offset;   ///< absolute file offset, 8-byte aligned
    uint64_t length;   ///< payload bytes (before padding)
    uint64_t checksum; ///< FNV-1a 64 of the payload bytes
};

static_assert(sizeof(SectionDesc) == 32,
              ".pgbi section descriptor is 32 bytes");

/** Section fourcc helper. */
constexpr uint32_t
fourcc(char a, char b, char c, char d)
{
    return static_cast<uint32_t>(static_cast<uint8_t>(a)) |
           static_cast<uint32_t>(static_cast<uint8_t>(b)) << 8 |
           static_cast<uint32_t>(static_cast<uint8_t>(c)) << 16 |
           static_cast<uint32_t>(static_cast<uint8_t>(d)) << 24;
}

// ---- Section tags -----------------------------------------------------
// Graph: node sequences + offsets, per-oriented-handle adjacency +
// offsets, path steps + offsets, NUL-joined path names.
constexpr uint32_t kSecMeta = fourcc('M', 'E', 'T', 'A');
constexpr uint32_t kSecGraphSeq = fourcc('G', 'S', 'E', 'Q');
constexpr uint32_t kSecGraphSeqOffsets = fourcc('G', 'S', 'O', 'F');
constexpr uint32_t kSecGraphAdj = fourcc('G', 'A', 'D', 'J');
constexpr uint32_t kSecGraphAdjOffsets = fourcc('G', 'A', 'O', 'F');
constexpr uint32_t kSecPathSteps = fourcc('P', 'S', 'T', 'P');
constexpr uint32_t kSecPathStepOffsets = fourcc('P', 'S', 'O', 'F');
constexpr uint32_t kSecPathNames = fourcc('P', 'N', 'A', 'M');
// Minimizer index: sorted TableEntry records + GraphSeedHit records.
// These two are the zero-copy sections: a loaded MinimizerIndex views
// them in place through std::span.
constexpr uint32_t kSecMinimizerTable = fourcc('M', 'T', 'A', 'B');
constexpr uint32_t kSecMinimizerHits = fourcc('M', 'H', 'I', 'T');
// GBWT: per-record {size, edgeCount, runCount, plainCount} headers +
// concatenated edge/edgeOffset/run/plain arrays (bulk-copy sections).
constexpr uint32_t kSecGbwtRecords = fourcc('B', 'R', 'E', 'C');
constexpr uint32_t kSecGbwtEdges = fourcc('B', 'E', 'D', 'G');
constexpr uint32_t kSecGbwtEdgeOffsets = fourcc('B', 'E', 'O', 'F');
constexpr uint32_t kSecGbwtRuns = fourcc('B', 'R', 'U', 'N');
constexpr uint32_t kSecGbwtPlain = fourcc('B', 'P', 'L', 'N');
// FM-index (optional, --seeder=mem): FmMeta scalars, BWT bytes, occ
// checkpoints, sampled SA values, mark bitvector words, path text
// offsets. FBWT/FOCC/FSSA/FMRK/FPOF are zero-copy: a loaded FmIndex
// views them in place through std::span, like the minimizer table.
constexpr uint32_t kSecFmMeta = fourcc('F', 'M', 'E', 'T');
constexpr uint32_t kSecFmBwt = fourcc('F', 'B', 'W', 'T');
constexpr uint32_t kSecFmOcc = fourcc('F', 'O', 'C', 'C');
constexpr uint32_t kSecFmSamples = fourcc('F', 'S', 'S', 'A');
constexpr uint32_t kSecFmMarks = fourcc('F', 'M', 'R', 'K');
constexpr uint32_t kSecFmPathOffsets = fourcc('F', 'P', 'O', 'F');
// Shard-set projection (optional, written by `pgb shard`; no version
// bump per the rules above): per local node, the global node id in the
// monolithic graph (SNOD, u32) and the monolith's linearization base
// of that node (SLIN, u64). A shard artifact carries both or neither.
constexpr uint32_t kSecShardNodes = fourcc('S', 'N', 'O', 'D');
constexpr uint32_t kSecShardLinear = fourcc('S', 'L', 'I', 'N');

/** META payload: the scalar facts every other section is sized by. */
struct Meta
{
    uint64_t nodeCount;
    uint64_t edgeCount;
    uint64_t pathCount;
    uint32_t k;
    uint32_t w;
    uint32_t flags; ///< kFlagHasGbwt | kFlagGbwtRle | kFlagHasFmIndex
    uint32_t reserved;
};

static_assert(sizeof(Meta) == 40, ".pgbi META payload is 40 bytes");

constexpr uint32_t kFlagHasGbwt = 1u << 0;
constexpr uint32_t kFlagGbwtRle = 1u << 1;
constexpr uint32_t kFlagHasFmIndex = 1u << 2;

/** FMET payload: the scalars the FM-index sections are sized by. */
struct FmMeta
{
    uint64_t textLength; ///< BWT symbols (haplotype bases + sentinels)
    uint32_t sampleRate; ///< SA sampling rate (>= 1)
    uint32_t reserved;
};

static_assert(sizeof(FmMeta) == 16, ".pgbi FMET payload is 16 bytes");

/** FNV-1a 64: fast, dependency-free payload checksum. */
inline uint64_t
fnv1a64(const void *data, size_t bytes, uint64_t seed = 0xcbf29ce484222325ull)
{
    const auto *p = static_cast<const uint8_t *>(data);
    uint64_t hash = seed;
    for (size_t i = 0; i < bytes; ++i) {
        hash ^= p[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

} // namespace pgb::store

#endif // PGB_STORE_FORMAT_HPP
