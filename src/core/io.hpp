/**
 * @file
 * Checked file output.
 *
 * A plain std::ofstream swallows write errors: an unwritable path or a
 * full disk leaves the stream in a fail state nobody looks at, the
 * program prints its success line, and the output is silently missing
 * or truncated. CheckedWriter is a thin wrapper that fatal()s when the
 * file cannot be opened and verifies the stream state after an
 * explicit flush in finish(), so every writer in the suite either
 * produces a complete file or a catchable error. The "io.flush" fault
 * site injects a write failure at finish() for tests.
 */

#ifndef PGB_CORE_IO_HPP
#define PGB_CORE_IO_HPP

#include <fstream>
#include <string>

namespace pgb::core {

/** An output file whose stream state is actually verified. */
class CheckedWriter
{
  public:
    /** Open @p path for writing; fatal() if it cannot be opened. */
    explicit CheckedWriter(const std::string &path);

    /** Warns if the writer is destroyed without finish(). */
    ~CheckedWriter();

    CheckedWriter(const CheckedWriter &) = delete;
    CheckedWriter &operator=(const CheckedWriter &) = delete;

    /** The underlying stream; write through this. */
    std::ostream &stream() { return file_; }

    const std::string &path() const { return path_; }

    /**
     * Flush, verify the stream state, and close. fatal() if any write
     * failed — the file must be assumed incomplete then.
     */
    void finish();

  private:
    std::string path_;
    std::ofstream file_;
    bool finished_ = false;
};

} // namespace pgb::core

#endif // PGB_CORE_IO_HPP
