/**
 * @file
 * Implicit interval tree (cgranges-style), after Li's "implicit interval
 * tree" and the mmmulti structures seqwish builds over its match set
 * (paper reference [36]).
 *
 * Intervals are stored in one sorted array; the binary search tree is
 * implicit in the array indices and each node is augmented with the
 * maximum end in its subtree. Queries walk the implicit tree and report
 * every stored interval overlapping [start, end).
 */

#ifndef PGB_CORE_INTERVAL_TREE_HPP
#define PGB_CORE_INTERVAL_TREE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pgb::core {

/** One stored interval with a caller-supplied payload. */
struct Interval
{
    uint64_t start = 0; ///< inclusive
    uint64_t end = 0;   ///< exclusive
    uint64_t value = 0; ///< caller payload (e.g. match index)
};

/**
 * Static implicit interval tree. Build once with add() + index(), then
 * query with overlap(). Mutation after index() requires re-indexing.
 */
class ImplicitIntervalTree
{
  public:
    /** Append an interval. O(1); invalidates the index. */
    void
    add(uint64_t start, uint64_t end, uint64_t value)
    {
        nodes_.push_back({start, end, value, end});
        indexed_ = false;
    }

    /** Number of stored intervals. */
    size_t size() const { return nodes_.size(); }

    /** Sort and build the max-end augmentation. O(n log n). */
    void index();

    /**
     * Collect every interval overlapping [start, end) into @p out
     * (appended). Requires index().
     * @return number of intervals reported.
     */
    size_t overlap(uint64_t start, uint64_t end,
                   std::vector<Interval> &out) const;

    /**
     * Visit every interval overlapping [start, end) with @p visitor,
     * a callable taking (const Interval &). Requires index().
     */
    template <typename Visitor>
    void
    visitOverlaps(uint64_t start, uint64_t end, Visitor &&visitor) const
    {
        walk(start, end, [&](const Node &node) {
            visitor(Interval{node.start, node.end, node.value});
        });
    }

  private:
    struct Node
    {
        uint64_t start;
        uint64_t end;
        uint64_t value;
        uint64_t maxEnd; ///< maximum end in the implicit subtree
    };

    template <typename Fn>
    void walk(uint64_t start, uint64_t end, Fn &&fn) const;

    std::vector<Node> nodes_;
    int maxLevel_ = -1;
    bool indexed_ = false;
};

template <typename Fn>
void
ImplicitIntervalTree::walk(uint64_t start, uint64_t end, Fn &&fn) const
{
    const size_t n = nodes_.size();
    if (!indexed_ || n == 0)
        return;

    struct Frame
    {
        int k;
        size_t x;
        bool leftDone;
    };
    Frame stack[64];
    int top = 0;
    stack[top++] = {maxLevel_, (1ull << maxLevel_) - 1, false};
    while (top > 0) {
        const Frame frame = stack[--top];
        if (frame.k <= 3) {
            // Small subtree: scan linearly over its index range.
            const size_t i0 = frame.x >> frame.k << frame.k;
            size_t i1 = i0 + (1ull << (frame.k + 1)) - 1;
            if (i1 > n)
                i1 = n;
            for (size_t i = i0; i < i1 && nodes_[i].start < end; ++i) {
                if (start < nodes_[i].end)
                    fn(nodes_[i]);
            }
        } else if (!frame.leftDone) {
            const size_t left = frame.x - (1ull << (frame.k - 1));
            stack[top++] = {frame.k, frame.x, true};
            if (left >= n || nodes_[left].maxEnd > start)
                stack[top++] = {frame.k - 1, left, false};
        } else if (frame.x < n && nodes_[frame.x].start < end) {
            if (start < nodes_[frame.x].end)
                fn(nodes_[frame.x]);
            stack[top++] =
                {frame.k - 1, frame.x + (1ull << (frame.k - 1)), false};
        }
    }
}

} // namespace pgb::core

#endif // PGB_CORE_INTERVAL_TREE_HPP
