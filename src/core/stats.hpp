/**
 * @file
 * Streaming statistics accumulator for benchmark reporting.
 */

#ifndef PGB_CORE_STATS_HPP
#define PGB_CORE_STATS_HPP

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

namespace pgb::core {

/** Welford streaming mean/variance with min/max tracking. */
class StatAccumulator
{
  public:
    /** Add one observation. */
    void
    add(double value)
    {
        ++count_;
        const double delta = value - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (value - mean_);
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
        sum_ += value;
    }

    size_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    double
    variance() const
    {
        return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace pgb::core

#endif // PGB_CORE_STATS_HPP
