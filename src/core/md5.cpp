#include "core/md5.hpp"

#include <array>
#include <cstdint>
#include <cstring>

namespace pgb::core {

namespace {

/** RFC 1321 reference constants: per-round left-rotate amounts. */
constexpr std::array<uint32_t, 64> kShift = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

/** RFC 1321 sine-table constants: floor(2^32 * abs(sin(i + 1))). */
constexpr std::array<uint32_t, 64> kSine = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf,
    0x4787c62a, 0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af,
    0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e,
    0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa,
    0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6,
    0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
    0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039,
    0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244, 0x432aff97,
    0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d,
    0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

uint32_t
rotateLeft(uint32_t value, uint32_t bits)
{
    return (value << bits) | (value >> (32 - bits));
}

/** Process one 64-byte block into the running state. */
void
processBlock(const uint8_t *block, uint32_t state[4])
{
    uint32_t m[16];
    for (int i = 0; i < 16; ++i)
        std::memcpy(&m[i], block + i * 4, 4); // little-endian words
    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    for (uint32_t i = 0; i < 64; ++i) {
        uint32_t f;
        uint32_t g;
        if (i < 16) {
            f = (b & c) | (~b & d);
            g = i;
        } else if (i < 32) {
            f = (d & b) | (~d & c);
            g = (5 * i + 1) % 16;
        } else if (i < 48) {
            f = b ^ c ^ d;
            g = (3 * i + 5) % 16;
        } else {
            f = c ^ (b | ~d);
            g = (7 * i) % 16;
        }
        const uint32_t temp = d;
        d = c;
        c = b;
        b = b + rotateLeft(a + f + kSine[i] + m[g], kShift[i]);
        a = temp;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
}

} // namespace

std::string
md5Hex(std::string_view data)
{
    uint32_t state[4] = {0x67452301, 0xefcdab89, 0x98badcfe,
                         0x10325476};

    const auto *bytes = reinterpret_cast<const uint8_t *>(data.data());
    size_t remaining = data.size();
    while (remaining >= 64) {
        processBlock(bytes, state);
        bytes += 64;
        remaining -= 64;
    }

    // Final block(s): 0x80 terminator, zero pad, 64-bit bit length.
    uint8_t tail[128] = {0};
    std::memcpy(tail, bytes, remaining);
    tail[remaining] = 0x80;
    const size_t tail_len = remaining + 9 <= 64 ? 64 : 128;
    const uint64_t bit_length =
        static_cast<uint64_t>(data.size()) * 8;
    std::memcpy(tail + tail_len - 8, &bit_length, 8);
    processBlock(tail, state);
    if (tail_len == 128)
        processBlock(tail + 64, state);

    static const char kHex[] = "0123456789abcdef";
    std::string hex;
    hex.reserve(32);
    for (const uint32_t word : state) {
        for (int byte = 0; byte < 4; ++byte) {
            const uint8_t v =
                static_cast<uint8_t>(word >> (byte * 8));
            hex.push_back(kHex[v >> 4]);
            hex.push_back(kHex[v & 0xf]);
        }
    }
    return hex;
}

} // namespace pgb::core
