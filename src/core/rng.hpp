/**
 * @file
 * Deterministic pseudo-random number generation for PangenomicsBench.
 *
 * All randomness in the suite flows through Xoshiro256StarStar so that
 * datasets, workloads, and benchmarks are reproducible from a single
 * seed. The generator follows Blackman & Vigna's xoshiro256** reference
 * implementation; seeding uses splitmix64 as they recommend.
 */

#ifndef PGB_CORE_RNG_HPP
#define PGB_CORE_RNG_HPP

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace pgb::core {

/** Splitmix64 step, used to expand a 64-bit seed into generator state. */
inline uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** pseudo-random generator.
 *
 * Satisfies the UniformRandomBitGenerator concept so it can drive
 * standard-library distributions, though the suite prefers the built-in
 * helpers below for cross-platform determinism.
 */
class Xoshiro256StarStar
{
  public:
    using result_type = uint64_t;

    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Xoshiro256StarStar(uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        uint64_t sm = seed;
        for (auto &word : state_)
            word = splitmix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return std::numeric_limits<uint64_t>::max();
    }

    /** Next 64 random bits. */
    uint64_t
    operator()()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). Bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded generation.
        __uint128_t m = static_cast<__uint128_t>(operator()()) * bound;
        auto lo = static_cast<uint64_t>(m);
        if (lo < bound) {
            const uint64_t threshold = -bound % bound;
            while (lo < threshold) {
                m = static_cast<__uint128_t>(operator()()) * bound;
                lo = static_cast<uint64_t>(m);
            }
        }
        return static_cast<uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    between(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
            below(static_cast<uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Zipf-like sample in [1, n] with exponent theta, via inverse
     * transform on the continuous approximation. PGSGD uses this family
     * to bias anchor-pair sampling toward nearby path positions.
     */
    uint64_t
    zipf(uint64_t n, double theta)
    {
        // Continuous power-law inverse CDF clamped to [1, n].
        const double u = uniform();
        if (theta == 1.0) {
            const double v = std::pow(static_cast<double>(n), u);
            const auto x = static_cast<uint64_t>(v);
            return x < 1 ? 1 : (x > n ? n : x);
        }
        const double a = 1.0 - theta;
        const double v = std::pow(
            u * (std::pow(static_cast<double>(n), a) - 1.0) + 1.0, 1.0 / a);
        const auto x = static_cast<uint64_t>(v);
        return x < 1 ? 1 : (x > n ? n : x);
    }

    /** Standard normal via Box-Muller (single value, discards pair). */
    double
    gaussian()
    {
        double u1 = uniform();
        while (u1 <= 0.0)
            u1 = uniform();
        const double u2 = uniform();
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * 3.14159265358979323846 * u2);
    }

    /** Jump the generator by a unique stream index (for Hogwild lanes). */
    static Xoshiro256StarStar
    forStream(uint64_t seed, uint64_t stream)
    {
        return Xoshiro256StarStar(seed ^ (0xA0761D6478BD642Full * (stream + 1)));
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<uint64_t, 4> state_;
};

/** Suite-wide default RNG alias. */
using Rng = Xoshiro256StarStar;

} // namespace pgb::core

#endif // PGB_CORE_RNG_HPP
