/**
 * @file
 * Typed command-line argument parsing for the pgb subcommands.
 *
 * Every subcommand used to scan argv by hand, so `--threads` on one
 * command and a positional thread count on another validated (or
 * failed to validate) differently. ArgParser centralizes the rules:
 * declared boolean flags (`--verbose`), valued options (`--index
 * art.pgbi`, with optional short aliases like `-o`), and positional
 * operands accessed by index with typed, range-checked getters. Errors
 * are one-line fatal()s ("<command>: <what>"), and `--help` prints an
 * auto-generated usage block assembled from the declarations.
 *
 * Anything starting with '-' that is not a declared flag/option is an
 * error — so garbage like a negative thread count fails loudly
 * instead of being swallowed as a positional.
 */

#ifndef PGB_CORE_ARG_PARSER_HPP
#define PGB_CORE_ARG_PARSER_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace pgb::core {

/**
 * Parse a decimal count, rejecting non-numeric and out-of-range input
 * instead of silently yielding 0 the way a raw strtoull would.
 * fatal()s with @p what in the message on any violation.
 */
uint64_t parseUint(const std::string &text, const std::string &what,
                   uint64_t min_value = 0,
                   uint64_t max_value = UINT64_MAX);

/** Declarative option/positional parser for one subcommand. */
class ArgParser
{
  public:
    /**
     * @param command    subcommand name ("map"), used in diagnostics
     * @param operands   positional usage text ("<graph.gfa> <reads.fq>")
     * @param summary    one-line description for the help block
     */
    ArgParser(std::string command, std::string operands,
              std::string summary);

    /** Declare a boolean flag ("--verbose"). */
    void flag(const std::string &name, const std::string &help);

    /**
     * Declare a valued option ("--index", value written as
     * "--index <art.pgbi>"). @p alias is an optional short form
     * ("-o"); empty = none.
     */
    void option(const std::string &name, const std::string &value_name,
                const std::string &help, const std::string &alias = "");

    /**
     * Consume @p argv (the arguments after the subcommand name).
     * Unknown dash-arguments and missing option values are fatal().
     * @return false when `--help` was seen: the help block has been
     *         printed and the caller should exit 0 without running.
     */
    bool parse(int argc, char **argv);

    // ---- post-parse access -----------------------------------------

    /** Whether the flag/option @p name was given. */
    bool has(const std::string &name) const;

    /** Value of option @p name, or @p fallback when absent. */
    std::string get(const std::string &name,
                    const std::string &fallback = "") const;

    /** Range-checked integer value of option @p name. */
    uint64_t getUint(const std::string &name, uint64_t fallback,
                     uint64_t min_value, uint64_t max_value) const;

    /** Number of positional operands seen. */
    size_t positionalCount() const { return positionals_.size(); }

    /** Positional @p index (must be < positionalCount()). */
    const std::string &positional(size_t index) const
    {
        return positionals_[index];
    }

    /** Required positional: fatal() naming @p what when absent. */
    const std::string &positionalOr(size_t index,
                                    const char *what) const;

    /** Optional positional with a default. */
    std::string positionalOr(size_t index,
                             const std::string &fallback) const;

    /** Range-checked integer positional with a default. */
    uint64_t positionalUint(size_t index, const char *what,
                            uint64_t fallback, uint64_t min_value,
                            uint64_t max_value) const;

    /**
     * fatal() unless the operand count lies in [min_count,
     * max_count]; the message includes the usage line.
     */
    void requirePositionals(size_t min_count, size_t max_count) const;

    /** The generated usage + option help block. */
    std::string helpText() const;

  private:
    struct Spec
    {
        std::string name;      ///< canonical "--name"
        std::string alias;     ///< optional short form, "" = none
        std::string valueName; ///< "" = boolean flag
        std::string help;
    };

    const Spec *findSpec(const std::string &name) const;
    [[noreturn]] void failUsage(const std::string &what) const;

    std::string command_;
    std::string operands_;
    std::string summary_;
    std::vector<Spec> specs_;
    std::vector<std::pair<std::string, std::string>> values_;
    std::vector<std::string> positionals_;
};

} // namespace pgb::core

#endif // PGB_CORE_ARG_PARSER_HPP
