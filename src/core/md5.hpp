/**
 * @file
 * MD5 digests for golden-output regression tests.
 *
 * Not a security primitive: the suite uses MD5 purely as a compact,
 * stable fingerprint of deterministic pipeline outputs (GFA text,
 * per-read mapping records) so the golden tests can lock in the
 * bit-identity guarantee across thread counts and PRs.
 */

#ifndef PGB_CORE_MD5_HPP
#define PGB_CORE_MD5_HPP

#include <string>
#include <string_view>

namespace pgb::core {

/** Lowercase 32-hex-digit MD5 of @p data. */
std::string md5Hex(std::string_view data);

} // namespace pgb::core

#endif // PGB_CORE_MD5_HPP
