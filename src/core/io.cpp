#include "core/io.hpp"

#include <cerrno>
#include <cstring>
#include <ios>

#include "core/fault.hpp"
#include "core/logging.hpp"

namespace pgb::core {

namespace {

FaultSite faultFlush(
    "io.flush", "FatalError, non-zero CLI exit; no partial output kept");

std::string
errnoReason()
{
    return errno != 0 ? std::strerror(errno) : "stream error";
}

} // namespace

CheckedWriter::CheckedWriter(const std::string &path)
    : path_(path), file_(path)
{
    if (!file_) {
        fatal("cannot open '", path_, "' for writing: ", errnoReason());
    }
}

CheckedWriter::~CheckedWriter()
{
    if (!finished_ && file_.is_open()) {
        warn("CheckedWriter: '", path_,
             "' destroyed without finish(); contents unverified");
    }
}

void
CheckedWriter::finish()
{
    // Mark finished up front: whether we verify or throw below, the
    // outcome has been reported and the destructor must stay silent.
    finished_ = true;
    errno = 0;
    file_.flush();
    if (faultFlush.fire()) {
        file_.setstate(std::ios::failbit);
        errno = EIO;
    }
    if (!file_) {
        fatal("write to '", path_, "' failed: ", errnoReason(),
              " (output is incomplete)");
    }
    file_.close();
    if (file_.fail())
        fatal("closing '", path_, "' failed: ", errnoReason());
}

} // namespace pgb::core
