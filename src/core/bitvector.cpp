#include "core/bitvector.hpp"

#include <bit>

#include "core/logging.hpp"

namespace pgb::core {

void
BitVector::resize(size_t size)
{
    size_ = size;
    words_.resize((size + 63) / 64, 0);
    rankBlocks_.clear();
}

size_t
BitVector::count() const
{
    size_t total = 0;
    for (uint64_t word : words_)
        total += static_cast<size_t>(std::popcount(word));
    return total;
}

void
BitVector::buildRank()
{
    rankBlocks_.resize(words_.size() + 1);
    size_t running = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
        rankBlocks_[i] = running;
        running += static_cast<size_t>(std::popcount(words_[i]));
    }
    rankBlocks_[words_.size()] = running;
}

size_t
BitVector::rank1(size_t index) const
{
    if (rankBlocks_.empty())
        panic("BitVector::rank1 called before buildRank()");
    const size_t word = index >> 6;
    const size_t bit = index & 63;
    size_t result = rankBlocks_[word];
    if (bit != 0) {
        result += static_cast<size_t>(
            std::popcount(words_[word] & ((1ull << bit) - 1)));
    }
    return result;
}

size_t
BitVector::findNextSet(size_t index) const
{
    if (index >= size_)
        return size_;
    size_t word = index >> 6;
    uint64_t bits = words_[word] & (~0ull << (index & 63));
    while (bits == 0) {
        if (++word >= words_.size())
            return size_;
        bits = words_[word];
    }
    const size_t found = (word << 6) +
        static_cast<size_t>(std::countr_zero(bits));
    return found < size_ ? found : size_;
}

} // namespace pgb::core
