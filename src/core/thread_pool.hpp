/**
 * @file
 * Minimal thread pool with a parallel-for primitive.
 *
 * The pipelines use parallelFor for read-batch parallelism (mapping) and
 * the PGSGD kernel uses raw worker launches for Hogwild! updates. The
 * pool is intentionally simple: work is split into contiguous chunks or
 * pulled from an atomic counter for dynamic balance.
 *
 * Both primitives are exception-safe: the first exception thrown by any
 * worker is captured, remaining work is drained, all workers are
 * joined, and the exception is rethrown on the calling thread — a
 * fatal() inside a parallel region is catchable by the caller instead
 * of hitting std::terminate. Fault sites "threadpool.for" and
 * "threadpool.run" (core/fault.hpp) inject worker failures for tests.
 */

#ifndef PGB_CORE_THREAD_POOL_HPP
#define PGB_CORE_THREAD_POOL_HPP

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace pgb::core {

/**
 * Run @p body(index) for every index in [begin, end) across @p threads
 * worker threads using dynamic chunked scheduling. Runs inline when
 * threads <= 1. Blocks until all work completes or, if a worker
 * throws, until the gang drains and joins — the first worker exception
 * is then rethrown here.
 */
void parallelFor(size_t begin, size_t end, unsigned threads,
                 const std::function<void(size_t)> &body,
                 size_t chunk = 64);

/**
 * Launch @p threads workers each running @p body(thread_index) and join
 * them all. Used for Hogwild!-style kernels where every worker owns its
 * own loop. The first worker exception is rethrown on the calling
 * thread after all workers join.
 */
void parallelRun(unsigned threads,
                 const std::function<void(unsigned)> &body);

/** Hardware concurrency with a sane fallback. */
unsigned hardwareThreads();

} // namespace pgb::core

#endif // PGB_CORE_THREAD_POOL_HPP
