/**
 * @file
 * Persistent work-stealing thread pool with parallel-for/parallel-run
 * primitives.
 *
 * The pool is lazily initialized on the first parallel call and then
 * reused for the life of the process: `hardwareThreads() - 1` workers
 * are spawned once (the calling thread always participates as the
 * extra lane), each owning a Chase-Lev-style work-stealing deque.
 * Quiescent workers park on a condition variable — no spin burn
 * between parallel regions — and are woken by submission. Tasks
 * submitted from non-worker threads go through a mutex-guarded
 * injector queue; workers drain their own deque bottom first, then the
 * injector, then steal from victims' tops.
 *
 * `parallelFor` splits [begin, end) into chunks claimed from a shared
 * atomic counter by up to `threads` concurrent runners (dynamic
 * balance, identical to the pre-pool gang semantics); `parallelRun`
 * executes body(t) for every t. `TaskGroup` exposes the underlying
 * submit/wait machinery for nested or irregular work: `wait()` *helps*
 * — the waiting thread executes pending tasks instead of blocking —
 * so parallel regions nest without deadlock or thread explosion.
 *
 * Both primitives are exception-safe: the first exception thrown by
 * any worker is captured, remaining work is drained, and the exception
 * is rethrown on the calling thread — a fatal() inside a parallel
 * region is catchable by the caller instead of hitting std::terminate.
 * Fault sites "threadpool.for" and "threadpool.run" (core/fault.hpp)
 * inject worker failures for tests.
 *
 * Thread-count policy is centralized here: `hardwareThreads()` honors
 * the PGB_THREADS environment override, and `clampThreads()` maps the
 * 0-means-serial convention callers used to hand-roll with
 * `std::max(1u, threads)`.
 */

#ifndef PGB_CORE_THREAD_POOL_HPP
#define PGB_CORE_THREAD_POOL_HPP

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>

namespace pgb::core {

/**
 * Run @p body(index) for every index in [begin, end) across up to
 * @p threads concurrent runners using dynamic chunked scheduling on
 * the shared pool. Runs inline when threads <= 1. Blocks until all
 * work completes or, if a worker throws, until in-flight chunks drain
 * — the first worker exception is then rethrown here.
 *
 * @p chunk = 0 (the default) derives a grain size from the range
 * length and runner count (see grainSize()); pass an explicit chunk
 * to pin the granularity.
 */
void parallelFor(size_t begin, size_t end, unsigned threads,
                 const std::function<void(size_t)> &body,
                 size_t chunk = 0);

/**
 * Execute @p body(thread_index) for every index in [0, threads) and
 * join them all. Used for Hogwild!-style kernels where every worker
 * owns its own loop. Concurrency is bounded by the pool width; extra
 * bodies queue and run as lanes free up. The first worker exception
 * is rethrown on the calling thread after all bodies complete.
 */
void parallelRun(unsigned threads,
                 const std::function<void(unsigned)> &body);

/**
 * Hardware concurrency with a sane fallback, overridable with the
 * PGB_THREADS environment variable (clamped to [1, 1024]; read once).
 */
unsigned hardwareThreads();

/** Centralized thread-count clamp: 0 requests mean 1 (serial). */
inline unsigned
clampThreads(unsigned requested)
{
    return requested == 0 ? 1u : requested;
}

/**
 * Auto grain size for a parallel loop: targets ~8 chunks per runner
 * for dynamic balance while bounding per-chunk claim overhead.
 */
size_t grainSize(size_t range, unsigned runners);

/** Workers spawned over the process lifetime (flat after warm-up). */
size_t poolWorkersSpawned();

/** Persistent workers owned by the pool (excludes calling threads). */
size_t poolWorkerCount();

/**
 * A handle over a set of submitted tasks. submit() enqueues work onto
 * the shared pool; wait() executes pending tasks on the calling thread
 * until every submitted task has finished, then rethrows the first
 * captured exception. Safe to use from inside pool tasks (nested
 * groups): waiting threads help instead of blocking, so the pool
 * cannot deadlock on nesting depth.
 */
class TaskGroup
{
  public:
    TaskGroup() = default;
    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Waits for stragglers; exceptions from them are swallowed here. */
    ~TaskGroup();

    /** Enqueue @p fn; it may start immediately on another worker. */
    void submit(std::function<void()> fn);

    /**
     * Help-run tasks until every submitted task completed, then
     * rethrow the group's first captured exception (once).
     */
    void wait();

    /** Whether any task of this group has thrown so far. */
    bool
    stopped() const
    {
        return stop_.load(std::memory_order_relaxed);
    }

  private:
    friend class ThreadPool;

    void capture() noexcept;

    std::atomic<size_t> pending_{0};
    std::atomic<bool> stop_{false};
    std::exception_ptr first_;
    std::mutex lock_;
};

} // namespace pgb::core

#endif // PGB_CORE_THREAD_POOL_HPP
