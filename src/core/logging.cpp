#include "core/logging.hpp"

#include <cstdio>
#include <mutex>

namespace pgb::core {

namespace {

std::mutex &
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

} // namespace

void
warnMessage(const std::string &message)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "warn: %s\n", message.c_str());
}

void
informMessage(const std::string &message)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "info: %s\n", message.c_str());
}

} // namespace pgb::core
