#include "core/arg_parser.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "core/logging.hpp"

namespace pgb::core {

uint64_t
parseUint(const std::string &text, const std::string &what,
          uint64_t min_value, uint64_t max_value)
{
    if (text.empty())
        fatal(what, ": empty value");
    errno = 0;
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || text[0] == '-') {
        fatal(what, ": '", text, "' is not a non-negative integer");
    }
    if (errno == ERANGE || value < min_value || value > max_value) {
        fatal(what, ": ", text, " is out of range [", min_value, ", ",
              max_value, "]");
    }
    return value;
}

ArgParser::ArgParser(std::string command, std::string operands,
                     std::string summary)
    : command_(std::move(command)), operands_(std::move(operands)),
      summary_(std::move(summary))
{
}

void
ArgParser::flag(const std::string &name, const std::string &help)
{
    specs_.push_back({name, "", "", help});
}

void
ArgParser::option(const std::string &name, const std::string &value_name,
                  const std::string &help, const std::string &alias)
{
    specs_.push_back({name, alias, value_name, help});
}

const ArgParser::Spec *
ArgParser::findSpec(const std::string &name) const
{
    for (const Spec &spec : specs_) {
        if (spec.name == name || (!spec.alias.empty() &&
                                  spec.alias == name)) {
            return &spec;
        }
    }
    return nullptr;
}

void
ArgParser::failUsage(const std::string &what) const
{
    // main() prefixes "pgb <command>:", so the message itself starts
    // with the complaint.
    fatal(what, "\nusage: pgb ", command_, " ", operands_,
          specs_.empty() ? "" : " [options]", "\n(see 'pgb ", command_,
          " --help')");
}

bool
ArgParser::parse(int argc, char **argv)
{
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(helpText().c_str(), stdout);
            return false;
        }
        if (arg.size() > 1 && arg[0] == '-') {
            // GNU-style `--opt=value` splits at the first '='.
            const size_t eq = arg.find('=');
            const std::string name =
                eq == std::string::npos ? arg : arg.substr(0, eq);
            const Spec *spec = findSpec(name);
            if (spec == nullptr)
                failUsage("unknown option '" + name + "'");
            if (spec->valueName.empty()) {
                if (eq != std::string::npos)
                    failUsage(spec->name + " takes no value");
                values_.emplace_back(spec->name, "");
                continue;
            }
            if (eq != std::string::npos) {
                values_.emplace_back(spec->name, arg.substr(eq + 1));
                continue;
            }
            if (i + 1 >= argc) {
                failUsage(spec->name + ": missing value <" +
                          spec->valueName + ">");
            }
            values_.emplace_back(spec->name, argv[++i]);
            continue;
        }
        positionals_.push_back(arg);
    }
    return true;
}

bool
ArgParser::has(const std::string &name) const
{
    for (const auto &[key, value] : values_) {
        if (key == name)
            return true;
    }
    return false;
}

std::string
ArgParser::get(const std::string &name, const std::string &fallback) const
{
    for (const auto &[key, value] : values_) {
        if (key == name)
            return value;
    }
    return fallback;
}

uint64_t
ArgParser::getUint(const std::string &name, uint64_t fallback,
                   uint64_t min_value, uint64_t max_value) const
{
    if (!has(name))
        return fallback;
    return parseUint(get(name), name, min_value, max_value);
}

const std::string &
ArgParser::positionalOr(size_t index, const char *what) const
{
    if (index >= positionals_.size())
        failUsage(std::string("missing <") + what + ">");
    return positionals_[index];
}

std::string
ArgParser::positionalOr(size_t index, const std::string &fallback) const
{
    return index < positionals_.size() ? positionals_[index] : fallback;
}

uint64_t
ArgParser::positionalUint(size_t index, const char *what,
                          uint64_t fallback, uint64_t min_value,
                          uint64_t max_value) const
{
    if (index >= positionals_.size())
        return fallback;
    return parseUint(positionals_[index], what, min_value, max_value);
}

void
ArgParser::requirePositionals(size_t min_count, size_t max_count) const
{
    if (positionals_.size() < min_count ||
        positionals_.size() > max_count) {
        std::ostringstream what;
        what << "expected ";
        if (min_count == max_count)
            what << min_count;
        else
            what << min_count << " to " << max_count;
        what << " operand(s), got " << positionals_.size();
        failUsage(what.str());
    }
}

std::string
ArgParser::helpText() const
{
    std::ostringstream out;
    out << "usage: pgb " << command_ << " " << operands_;
    if (!specs_.empty())
        out << " [options]";
    out << "\n  " << summary_ << "\n";
    if (!specs_.empty()) {
        out << "\noptions:\n";
        for (const Spec &spec : specs_) {
            std::string left = "  " + spec.name;
            if (!spec.alias.empty())
                left += ", " + spec.alias;
            if (!spec.valueName.empty())
                left += " <" + spec.valueName + ">";
            out << left;
            for (size_t pad = left.size(); pad < 26; ++pad)
                out << ' ';
            out << "  " << spec.help << "\n";
        }
    }
    out << "\nglobal options (any subcommand):\n"
           "  --metrics <out.json>      write runtime counters on exit\n"
           "  --trace <out.json>        write chrome://tracing spans\n";
    return out.str();
}

} // namespace pgb::core
