/**
 * @file
 * Scratch reuse for hot paths: thread-local workspaces and
 * default-initializing vectors.
 *
 * The mapping pipeline used to allocate fresh std::vectors for every
 * read's anchors, chains, DP states, and gap queries — malloc traffic
 * the paper's hot-path characterization charges straight to the
 * kernels. Two tools kill it:
 *
 *  - threadScratch<W>(): one W per (thread, W type) for the process
 *    lifetime. A workspace is a plain struct of containers; callers
 *    clear()/assign() members per task (a "generation"), which keeps
 *    the heap allocations and only resets sizes. Safe under the work-
 *    stealing pool because a task runs on exactly one thread; the
 *    workspace must never escape the task that borrowed it.
 *
 *  - DefaultInitAlloc: a vector allocator that default-initializes
 *    (i.e. leaves POD elements uninitialized) on resize, for buffers
 *    whose every element is overwritten before being read — e.g. the
 *    GSSW per-node DP matrices, where the zero-fill was pure waste.
 */

#ifndef PGB_CORE_SCRATCH_HPP
#define PGB_CORE_SCRATCH_HPP

#include <memory>

namespace pgb::core {

/**
 * Allocator that skips value-initialization: vector<T, DefaultInitAlloc
 * <T>> resize leaves new POD elements uninitialized. Only use for
 * buffers that are fully overwritten before any read.
 */
template <typename T>
struct DefaultInitAlloc : std::allocator<T>
{
    template <typename U>
    struct rebind
    {
        using other = DefaultInitAlloc<U>;
    };

    DefaultInitAlloc() = default;

    template <typename U>
    constexpr DefaultInitAlloc(const DefaultInitAlloc<U> &) noexcept
    {
    }

    template <typename U>
    void
    construct(U *p) noexcept(noexcept(::new (static_cast<void *>(p)) U))
    {
        ::new (static_cast<void *>(p)) U;
    }

    template <typename U, typename... Args>
    void
    construct(U *p, Args &&...args)
    {
        std::allocator<T> base;
        std::allocator_traits<std::allocator<T>>::construct(
            base, p, std::forward<Args>(args)...);
    }
};

/**
 * The calling thread's scratch workspace of type @p W (constructed on
 * first use, reused for the thread's lifetime). Treat the reference as
 * task-local: re-fetch it in every task and never store it across a
 * parallelFor boundary.
 */
template <typename W>
W &
threadScratch()
{
    thread_local W workspace;
    return workspace;
}

} // namespace pgb::core

#endif // PGB_CORE_SCRATCH_HPP
