/**
 * @file
 * Probe policy: zero-cost kernel instrumentation hooks.
 *
 * The paper characterizes its kernels three ways: dynamic instruction
 * mix (Intel PIN + MICA, Figure 8), cache misses per kilo-instruction
 * (VTune, Figure 7), and top-down pipeline analysis (VTune, Figure 6).
 * We reproduce those analyses by instrumenting the kernels themselves:
 * every kernel is templated on a Probe type and reports its abstract
 * operations, memory accesses (with real addresses), and branches.
 *
 * NullProbe has empty inline methods, so timed benchmark runs compile
 * to the uninstrumented kernel. CountingProbe implements the MICA-style
 * hierarchical instruction binning. The tracing probe that feeds the
 * cache and branch simulators lives in src/prof (TraceProbe), since it
 * depends on those simulators.
 */

#ifndef PGB_CORE_PROBE_HPP
#define PGB_CORE_PROBE_HPP

#include <array>
#include <cstddef>
#include <cstdint>

namespace pgb::core {

/**
 * Operation categories, matching the paper's Figure 8 legend. Binning
 * is hierarchical in this order (an op is classified once): Vector >
 * Control > Memory > Scalar > Register.
 */
enum class OpKind : uint8_t {
    kVector = 0,  ///< SIMD arithmetic/logic (incl. SSE scalar FP, as in
                  ///< the paper's binning of MULSD et al.)
    kControl,     ///< branches, compares feeding branches
    kMemory,      ///< loads and stores (counted via load()/store())
    kScalar,      ///< scalar integer/FP arithmetic and logic
    kRegister,    ///< register-to-register moves
    kNumKinds,
};

constexpr size_t kNumOpKinds = static_cast<size_t>(OpKind::kNumKinds);

/** No-op probe: all hooks inline to nothing. */
struct NullProbe
{
    static constexpr bool enabled = false;

    void op(OpKind, uint64_t = 1) {}
    void load(const void *, uint32_t) {}
    void store(const void *, uint32_t) {}
    void branch(uint32_t /* site */, bool /* taken */) {}
};

/** Counts operations by kind; the Figure 8 instruction-mix collector. */
struct CountingProbe
{
    static constexpr bool enabled = true;

    std::array<uint64_t, kNumOpKinds> counts{};
    uint64_t loadBytes = 0;
    uint64_t storeBytes = 0;
    uint64_t loadOps = 0;
    uint64_t storeOps = 0;
    uint64_t branches = 0;
    uint64_t branchesTaken = 0;

    void
    op(OpKind kind, uint64_t n = 1)
    {
        counts[static_cast<size_t>(kind)] += n;
    }

    void
    load(const void *, uint32_t bytes)
    {
        op(OpKind::kMemory);
        ++loadOps;
        loadBytes += bytes;
    }

    void
    store(const void *, uint32_t bytes)
    {
        op(OpKind::kMemory);
        ++storeOps;
        storeBytes += bytes;
    }

    void
    branch(uint32_t, bool taken)
    {
        op(OpKind::kControl);
        ++branches;
        branchesTaken += taken ? 1 : 0;
    }

    /** Total classified operations ("dynamic instructions"). */
    uint64_t
    totalOps() const
    {
        uint64_t total = 0;
        for (uint64_t c : counts)
            total += c;
        return total;
    }
};

} // namespace pgb::core

#endif // PGB_CORE_PROBE_HPP
