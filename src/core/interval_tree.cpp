#include "core/interval_tree.hpp"

#include <algorithm>

#include "core/logging.hpp"

namespace pgb::core {

void
ImplicitIntervalTree::index()
{
    std::sort(nodes_.begin(), nodes_.end(),
              [](const Node &a, const Node &b) {
                  return a.start < b.start ||
                         (a.start == b.start && a.end < b.end);
              });
    const size_t n = nodes_.size();
    if (n == 0) {
        maxLevel_ = -1;
        indexed_ = true;
        return;
    }

    // Bottom-up max-end augmentation over the implicit tree, following
    // Li's cgranges indexing routine.
    size_t last_i = 0;
    uint64_t last = 0;
    for (size_t i = 0; i < n; i += 2) {
        last_i = i;
        last = nodes_[i].maxEnd = nodes_[i].end;
    }
    int k = 1;
    for (; (1ull << k) <= n; ++k) {
        const size_t x = 1ull << (k - 1);
        const size_t i0 = (x << 1) - 1;
        const size_t step = x << 2;
        for (size_t i = i0; i < n; i += step) {
            const uint64_t left_max = nodes_[i - x].maxEnd;
            const uint64_t right_max =
                i + x < n ? nodes_[i + x].maxEnd : last;
            nodes_[i].maxEnd =
                std::max({nodes_[i].end, left_max, right_max});
        }
        last_i = (last_i >> k) & 1 ? last_i - x : last_i + x;
        if (last_i < n && nodes_[last_i].maxEnd > last)
            last = nodes_[last_i].maxEnd;
    }
    maxLevel_ = k - 1;
    indexed_ = true;
}

size_t
ImplicitIntervalTree::overlap(uint64_t start, uint64_t end,
                              std::vector<Interval> &out) const
{
    size_t reported = 0;
    walk(start, end, [&](const Node &node) {
        out.push_back({node.start, node.end, node.value});
        ++reported;
    });
    return reported;
}

} // namespace pgb::core
