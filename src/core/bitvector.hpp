/**
 * @file
 * Plain and atomic bit vectors.
 *
 * BitVector is a compact dynamic bitset with rank support used by the
 * GBWT index and the transclosure kernel. AtomicBitVector reproduces the
 * lock-free "seen" set that seqwish uses during transclosure (paper
 * reference [51], github.com/ekg/atomicbitvector).
 */

#ifndef PGB_CORE_BITVECTOR_HPP
#define PGB_CORE_BITVECTOR_HPP

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace pgb::core {

/** Dynamic bit vector with O(1) rank after buildRank(). */
class BitVector
{
  public:
    BitVector() = default;

    /** Construct @p size bits, all clear. */
    explicit BitVector(size_t size) { resize(size); }

    /** Resize to @p size bits; new bits are clear. */
    void resize(size_t size);

    size_t size() const { return size_; }

    /** Set bit @p index to 1. Invalidates rank structure. */
    void
    set(size_t index)
    {
        words_[index >> 6] |= (1ull << (index & 63));
    }

    /** Clear bit @p index. Invalidates rank structure. */
    void
    clear(size_t index)
    {
        words_[index >> 6] &= ~(1ull << (index & 63));
    }

    bool
    get(size_t index) const
    {
        return (words_[index >> 6] >> (index & 63)) & 1;
    }

    /** Number of set bits in the whole vector. */
    size_t count() const;

    /**
     * Build the rank directory. Must be called after the last mutation
     * and before rank1() queries.
     */
    void buildRank();

    /** Number of set bits strictly before @p index. Requires buildRank. */
    size_t rank1(size_t index) const;

    /** Index of the first set bit at or after @p index, or size() if none. */
    size_t findNextSet(size_t index) const;

    const std::vector<uint64_t> &words() const { return words_; }

  private:
    size_t size_ = 0;
    std::vector<uint64_t> words_;
    std::vector<size_t> rankBlocks_; // cumulative popcount per 64-bit word
};

/**
 * Fixed-size lock-free bit vector.
 *
 * Supports concurrent set-and-test, mirroring the atomic bitset used by
 * seqwish to mark characters already swept into a transitive closure.
 */
class AtomicBitVector
{
  public:
    explicit AtomicBitVector(size_t size)
        : size_(size),
          words_(std::make_unique<std::atomic<uint64_t>[]>((size + 63) / 64))
    {
        for (size_t i = 0; i < (size + 63) / 64; ++i)
            words_[i].store(0, std::memory_order_relaxed);
    }

    size_t size() const { return size_; }

    /**
     * Atomically set bit @p index.
     * @return true if this call changed the bit from 0 to 1.
     */
    bool
    setIfClear(size_t index)
    {
        const uint64_t mask = 1ull << (index & 63);
        const uint64_t old = words_[index >> 6].fetch_or(
            mask, std::memory_order_acq_rel);
        return (old & mask) == 0;
    }

    bool
    get(size_t index) const
    {
        return (words_[index >> 6].load(std::memory_order_acquire) >>
                (index & 63)) & 1;
    }

    /** Number of set bits (not atomic with respect to concurrent sets). */
    size_t
    count() const
    {
        size_t total = 0;
        for (size_t i = 0; i < (size_ + 63) / 64; ++i) {
            total += static_cast<size_t>(std::popcount(
                words_[i].load(std::memory_order_relaxed)));
        }
        return total;
    }

  private:
    size_t size_;
    std::unique_ptr<std::atomic<uint64_t>[]> words_;
};

} // namespace pgb::core

#endif // PGB_CORE_BITVECTOR_HPP
