#include "core/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <mutex>

#include "core/fault.hpp"
#include "core/logging.hpp"

namespace pgb::core {

namespace {

FaultSite faultForWorker("threadpool.for");
FaultSite faultRunWorker("threadpool.run");

/**
 * First-exception capture shared by a worker gang: the first failure
 * is kept, later ones are dropped, and `stop` drains remaining work so
 * the gang joins promptly instead of finishing a doomed batch.
 */
struct GangError
{
    std::atomic<bool> stop{false};
    std::exception_ptr first;
    std::mutex lock;

    void
    capture() noexcept
    {
        std::lock_guard<std::mutex> guard(lock);
        if (!first)
            first = std::current_exception();
        stop.store(true, std::memory_order_relaxed);
    }

    void
    rethrowIfSet()
    {
        if (first)
            std::rethrow_exception(first);
    }
};

/**
 * Launch @p threads - 1 workers plus the calling thread, join them
 * all, and rethrow the gang's first exception on the calling thread.
 * Thread creation failure is itself a recoverable FatalError: already
 * running workers are drained and joined first.
 */
template <typename Worker>
void
runGang(unsigned threads, GangError &error, const Worker &worker)
{
    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    try {
        for (unsigned t = 1; t < threads; ++t)
            pool.emplace_back(worker, t);
    } catch (const std::system_error &spawn_error) {
        error.stop.store(true, std::memory_order_relaxed);
        for (auto &thread : pool)
            thread.join();
        fatal("thread pool: cannot spawn worker thread: ",
              spawn_error.what());
    }
    worker(0u);
    for (auto &thread : pool)
        thread.join();
    error.rethrowIfSet();
}

} // namespace

void
parallelFor(size_t begin, size_t end, unsigned threads,
            const std::function<void(size_t)> &body, size_t chunk)
{
    if (end <= begin)
        return;
    chunk = std::max<size_t>(1, chunk);
    if (threads <= 1) {
        // Inline path: fire the same site so injected worker faults
        // behave identically at every thread count.
        for (size_t i = begin; i < end; i += chunk) {
            if (faultForWorker.fire())
                fatal("parallelFor: injected worker fault at index ", i);
            const size_t hi = std::min(i + chunk, end);
            for (size_t j = i; j < hi; ++j)
                body(j);
        }
        return;
    }

    std::atomic<size_t> next(begin);
    GangError error;
    auto worker = [&](unsigned) {
        try {
            while (!error.stop.load(std::memory_order_relaxed)) {
                const size_t lo = next.fetch_add(chunk);
                if (lo >= end)
                    return;
                if (faultForWorker.fire()) {
                    fatal("parallelFor: injected worker fault at index ",
                          lo);
                }
                const size_t hi = std::min(lo + chunk, end);
                for (size_t i = lo; i < hi; ++i)
                    body(i);
            }
        } catch (...) {
            error.capture();
        }
    };
    runGang(threads, error, worker);
}

void
parallelRun(unsigned threads, const std::function<void(unsigned)> &body)
{
    if (threads <= 1) {
        if (faultRunWorker.fire())
            fatal("parallelRun: injected worker fault in thread 0");
        body(0);
        return;
    }
    GangError error;
    auto worker = [&](unsigned t) {
        try {
            if (faultRunWorker.fire())
                fatal("parallelRun: injected worker fault in thread ", t);
            body(t);
        } catch (...) {
            error.capture();
        }
    };
    runGang(threads, error, worker);
}

unsigned
hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 4 : n;
}

} // namespace pgb::core
