#include "core/thread_pool.hpp"

#include <algorithm>
#include <array>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "core/fault.hpp"
#include "core/logging.hpp"
#include "core/timer.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"

namespace pgb::core {

namespace {

FaultSite faultForWorker(
    "threadpool.for",
    "FatalError on the calling thread; pool survives for later regions");
FaultSite faultRunWorker(
    "threadpool.run",
    "FatalError on the calling thread; pool survives for later regions");

// Scheduler telemetry (obs/metrics.hpp). Tasks are coarse — one per
// runner per parallel region — so a relaxed add per event is free
// relative to the work a task carries.
obs::Counter obsTasksSpawned("threadpool.tasks_spawned");
obs::Counter obsTasksInjected("threadpool.tasks_injected");
obs::Counter obsTasksStolen("threadpool.tasks_stolen");
obs::Counter obsParks("threadpool.parks");
obs::Counter obsUnparks("threadpool.unparks");
obs::Gauge obsQueueDepth("threadpool.queue_depth");

// Task execution latency distribution: tasks are coarse (one runner
// per parallel region), so two clock reads per task are free relative
// to the work a task carries, and the p99/max expose stragglers the
// plain event counters cannot.
obs::Histogram obsTaskNanos("threadpool.task_nanos");

/** Lifetime worker-spawn counter (tests assert it stays flat). */
std::atomic<size_t> spawnedWorkers(0);

/** Worker index of the current thread, -1 on non-pool threads. */
thread_local int tlsWorker = -1;

struct Task
{
    std::function<void()> fn;
    TaskGroup *group;
};

/**
 * Chase-Lev work-stealing deque (Le et al., "Correct and Efficient
 * Work-Stealing for Weak Memory Models"), fixed-capacity variant: the
 * owner pushes and pops at the bottom, thieves race on the top with a
 * CAS. Orderings are kept at seq_cst on the top/bottom race (instead
 * of standalone fences) so ThreadSanitizer models them precisely;
 * submission is rare and coarse, so the cost is irrelevant. A full
 * deque rejects the push and the pool falls back to its injector.
 */
class WorkDeque
{
  public:
    /** Owner-only bottom push; false when full. */
    bool
    push(Task *task)
    {
        const int64_t b = bottom_.load(std::memory_order_relaxed);
        const int64_t t = top_.load(std::memory_order_acquire);
        if (b - t >= static_cast<int64_t>(kCapacity))
            return false;
        slots_[static_cast<size_t>(b) & kMask].store(
            task, std::memory_order_relaxed);
        bottom_.store(b + 1, std::memory_order_release);
        return true;
    }

    /** Owner-only bottom pop; nullptr when empty or lost race. */
    Task *
    pop()
    {
        const int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
        bottom_.store(b, std::memory_order_seq_cst);
        int64_t t = top_.load(std::memory_order_seq_cst);
        if (t > b) {
            bottom_.store(b + 1, std::memory_order_relaxed);
            return nullptr;
        }
        Task *task = slots_[static_cast<size_t>(b) & kMask].load(
            std::memory_order_relaxed);
        if (t == b) {
            // Last element: race the thieves for it.
            if (!top_.compare_exchange_strong(
                    t, t + 1, std::memory_order_seq_cst,
                    std::memory_order_relaxed)) {
                task = nullptr;
            }
            bottom_.store(b + 1, std::memory_order_relaxed);
        }
        return task;
    }

    /** Thief top steal; nullptr when empty or lost race. */
    Task *
    steal()
    {
        int64_t t = top_.load(std::memory_order_seq_cst);
        const int64_t b = bottom_.load(std::memory_order_seq_cst);
        if (t >= b)
            return nullptr;
        Task *task = slots_[static_cast<size_t>(t) & kMask].load(
            std::memory_order_relaxed);
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
            return nullptr;
        }
        return task;
    }

  private:
    static constexpr size_t kCapacity = 4096;
    static constexpr size_t kMask = kCapacity - 1;

    std::atomic<int64_t> top_{0};
    std::atomic<int64_t> bottom_{0};
    std::array<std::atomic<Task *>, kCapacity> slots_{};
};

} // namespace

/**
 * The persistent pool: hardwareThreads() - 1 workers spawned on first
 * use, each owning a WorkDeque; non-worker submissions land in the
 * injector. Idle workers park on idleCv_ (no spinning when quiescent)
 * and are woken by submission; waiters in helpWhile() park on the same
 * condition variable and are woken by submission or group completion.
 */
class ThreadPool
{
  public:
    static ThreadPool &
    instance()
    {
        static ThreadPool pool;
        return pool;
    }

    unsigned
    workerCount() const
    {
        return workers_.load(std::memory_order_acquire);
    }

    void
    submit(Task *task)
    {
        task->group->pending_.fetch_add(1, std::memory_order_acq_rel);
        queued_.fetch_add(1, std::memory_order_release);
        obsTasksSpawned.add();
        obsQueueDepth.add();
        bool queued = false;
        if (tlsWorker >= 0)
            queued = deques_[static_cast<size_t>(tlsWorker)]->push(task);
        if (!queued) {
            obsTasksInjected.add();
            std::lock_guard<std::mutex> guard(injectorMutex_);
            injector_.push_back(task);
        }
        std::lock_guard<std::mutex> guard(idleMutex_);
        idleCv_.notify_all();
    }

    /** Help-run tasks until @p group has none pending. */
    void
    helpWhile(TaskGroup &group)
    {
        while (group.pending_.load(std::memory_order_acquire) > 0) {
            Task *task = acquire(tlsWorker);
            if (task) {
                runTask(task);
                continue;
            }
            std::unique_lock<std::mutex> guard(idleMutex_);
            idleCv_.wait(guard, [&] {
                return group.pending_.load(std::memory_order_acquire) ==
                           0 ||
                       queued_.load(std::memory_order_relaxed) > 0;
            });
        }
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> guard(idleMutex_);
            shutdown_ = true;
        }
        idleCv_.notify_all();
        for (auto &thread : threads_)
            thread.join();
    }

  private:
    ThreadPool()
    {
        const unsigned target = hardwareThreads() - 1;
        deques_.reserve(target);
        for (unsigned t = 0; t < target; ++t)
            deques_.push_back(std::make_unique<WorkDeque>());
        threads_.reserve(target);
        for (unsigned t = 0; t < target; ++t) {
            try {
                threads_.emplace_back(&ThreadPool::workerLoop, this, t);
            } catch (const std::system_error &spawn_error) {
                warn("thread pool: cannot spawn worker ", t, ": ",
                     spawn_error.what(), "; continuing with ",
                     threads_.size(), " workers");
                break;
            }
            spawnedWorkers.fetch_add(1, std::memory_order_relaxed);
        }
        // Already-running workers read this concurrently in acquire();
        // until the store lands they just see fewer steal targets.
        workers_.store(static_cast<unsigned>(threads_.size()),
                       std::memory_order_release);
    }

    void
    workerLoop(unsigned self)
    {
        tlsWorker = static_cast<int>(self);
        for (;;) {
            Task *task = acquire(static_cast<int>(self));
            if (task) {
                runTask(task);
                continue;
            }
            obsParks.add();
            std::unique_lock<std::mutex> guard(idleMutex_);
            idleCv_.wait(guard, [&] {
                return shutdown_ ||
                       queued_.load(std::memory_order_relaxed) > 0;
            });
            obsUnparks.add();
            if (shutdown_)
                return;
        }
    }

    /** Own deque, then the injector, then steal; nullptr when dry. */
    Task *
    acquire(int self)
    {
        Task *task = nullptr;
        if (self >= 0)
            task = deques_[static_cast<size_t>(self)]->pop();
        if (!task) {
            std::lock_guard<std::mutex> guard(injectorMutex_);
            if (!injector_.empty()) {
                task = injector_.front();
                injector_.pop_front();
            }
        }
        const unsigned workers =
            workers_.load(std::memory_order_relaxed);
        if (!task && workers > 0) {
            const unsigned start =
                self >= 0 ? static_cast<unsigned>(self) + 1 : 0;
            for (unsigned i = 0; i < workers && !task; ++i)
                task = deques_[(start + i) % workers]->steal();
            if (task)
                obsTasksStolen.add();
        }
        if (task) {
            queued_.fetch_sub(1, std::memory_order_relaxed);
            obsQueueDepth.sub();
        }
        return task;
    }

    void
    runTask(Task *task)
    {
        TaskGroup *group = task->group;
        const uint64_t start = monotonicNanos();
        try {
            task->fn();
        } catch (...) {
            group->capture();
        }
        obsTaskNanos.record(monotonicNanos() - start);
        delete task;
        // fetch_sub is the final access to *group: waiters may return
        // (and destroy the group) the moment they observe zero.
        if (group->pending_.fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
            std::lock_guard<std::mutex> guard(idleMutex_);
            idleCv_.notify_all();
        }
    }

    std::vector<std::unique_ptr<WorkDeque>> deques_;
    std::vector<std::thread> threads_;
    std::atomic<unsigned> workers_{0};

    /// Submitted-but-unclaimed tasks (may go transiently negative
    /// between a claim and the matching submit-side increment).
    std::atomic<int64_t> queued_{0};

    std::mutex injectorMutex_;
    std::deque<Task *> injector_;

    std::mutex idleMutex_;
    std::condition_variable idleCv_;
    bool shutdown_ = false;
};

// ------------------------------------------------------- TaskGroup

TaskGroup::~TaskGroup()
{
    if (pending_.load(std::memory_order_acquire) > 0)
        ThreadPool::instance().helpWhile(*this);
}

void
TaskGroup::submit(std::function<void()> fn)
{
    ThreadPool::instance().submit(new Task{std::move(fn), this});
}

void
TaskGroup::wait()
{
    ThreadPool::instance().helpWhile(*this);
    std::exception_ptr first;
    {
        std::lock_guard<std::mutex> guard(lock_);
        std::swap(first, first_);
    }
    if (first)
        std::rethrow_exception(first);
}

void
TaskGroup::capture() noexcept
{
    std::lock_guard<std::mutex> guard(lock_);
    if (!first_)
        first_ = std::current_exception();
    stop_.store(true, std::memory_order_relaxed);
}

// ------------------------------------------------------ primitives

size_t
grainSize(size_t range, unsigned runners)
{
    const size_t lanes = std::max(1u, runners);
    return std::clamp<size_t>(range / (lanes * 8), 1, 65536);
}

void
parallelFor(size_t begin, size_t end, unsigned threads,
            const std::function<void(size_t)> &body, size_t chunk)
{
    if (end <= begin)
        return;
    const size_t range = end - begin;
    threads = clampThreads(threads);
    unsigned runners = 1;
    if (threads > 1) {
        // The calling thread always participates as one runner.
        runners = std::min<unsigned>(
            threads,
            static_cast<unsigned>(ThreadPool::instance().workerCount()) +
                1);
    }
    if (runners <= 1) {
        // Inline path: fire the same site so injected worker faults
        // behave identically at every thread count.
        const size_t grain =
            chunk > 0 ? chunk : grainSize(range, 1);
        for (size_t i = begin; i < end; i += grain) {
            if (faultForWorker.fire())
                fatal("parallelFor: injected worker fault at index ", i);
            const size_t hi = std::min(i + grain, end);
            for (size_t j = i; j < hi; ++j)
                body(j);
        }
        return;
    }

    const size_t grain = chunk > 0 ? chunk : grainSize(range, runners);
    std::atomic<size_t> next(begin);
    TaskGroup group;
    auto runner = [&group, &next, &body, end, grain]() {
        while (!group.stopped()) {
            const size_t lo = next.fetch_add(grain);
            if (lo >= end)
                return;
            if (faultForWorker.fire())
                fatal("parallelFor: injected worker fault at index ",
                      lo);
            const size_t hi = std::min(lo + grain, end);
            for (size_t i = lo; i < hi; ++i)
                body(i);
        }
    };
    for (unsigned t = 0; t < runners; ++t)
        group.submit(runner);
    group.wait();
}

void
parallelRun(unsigned threads, const std::function<void(unsigned)> &body)
{
    threads = clampThreads(threads);
    if (threads <= 1) {
        if (faultRunWorker.fire())
            fatal("parallelRun: injected worker fault in thread 0");
        body(0);
        return;
    }
    TaskGroup group;
    for (unsigned t = 0; t < threads; ++t) {
        group.submit([&body, t]() {
            if (faultRunWorker.fire()) {
                fatal("parallelRun: injected worker fault in thread ",
                      t);
            }
            body(t);
        });
    }
    group.wait();
}

unsigned
hardwareThreads()
{
    static const unsigned cached = [] {
        if (const char *env = std::getenv("PGB_THREADS")) {
            char *parse_end = nullptr;
            const unsigned long v = std::strtoul(env, &parse_end, 10);
            if (parse_end != env && *parse_end == '\0' && v >= 1 &&
                v <= 1024) {
                return static_cast<unsigned>(v);
            }
            warn("PGB_THREADS: ignoring invalid value '", env, "'");
        }
        const unsigned n = std::thread::hardware_concurrency();
        return n == 0 ? 4u : n;
    }();
    return cached;
}

size_t
poolWorkersSpawned()
{
    return spawnedWorkers.load(std::memory_order_relaxed);
}

size_t
poolWorkerCount()
{
    return ThreadPool::instance().workerCount();
}

} // namespace pgb::core
