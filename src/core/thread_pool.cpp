#include "core/thread_pool.hpp"

#include <algorithm>

namespace pgb::core {

void
parallelFor(size_t begin, size_t end, unsigned threads,
            const std::function<void(size_t)> &body, size_t chunk)
{
    if (end <= begin)
        return;
    if (threads <= 1) {
        for (size_t i = begin; i < end; ++i)
            body(i);
        return;
    }

    std::atomic<size_t> next(begin);
    auto worker = [&]() {
        for (;;) {
            const size_t lo = next.fetch_add(chunk);
            if (lo >= end)
                return;
            const size_t hi = std::min(lo + chunk, end);
            for (size_t i = lo; i < hi; ++i)
                body(i);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    for (unsigned t = 1; t < threads; ++t)
        pool.emplace_back(worker);
    worker();
    for (auto &thread : pool)
        thread.join();
}

void
parallelRun(unsigned threads, const std::function<void(unsigned)> &body)
{
    if (threads <= 1) {
        body(0);
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    for (unsigned t = 1; t < threads; ++t)
        pool.emplace_back([&body, t]() { body(t); });
    body(0);
    for (auto &thread : pool)
        thread.join();
}

unsigned
hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 4 : n;
}

} // namespace pgb::core
