/**
 * @file
 * Byte arena with optional file backing.
 *
 * seqwish memory-maps its match and closure structures to files so that
 * transclosure can run on machines with less RAM than the working set
 * (paper §3, TC kernel). Arena reproduces that: in kFileBacked mode the
 * storage is an mmap'ed temporary file; in kInMemory mode it is a plain
 * allocation (used by unit tests). The access pattern through the arena
 * is identical either way.
 *
 * File-backed setup is best-effort: if mkstemp/open, ftruncate, or
 * mmap fails (for real, or via the "arena.open" / "arena.ftruncate" /
 * "arena.mmap" fault sites), the arena warn()s and degrades to
 * in-memory storage with contents and offsets preserved, so callers
 * like transclose() keep working with the same results.
 */

#ifndef PGB_CORE_ARENA_HPP
#define PGB_CORE_ARENA_HPP

#include <cstddef>
#include <cstdint>
#include <string>

namespace pgb::core {

/** Growable byte buffer, optionally backed by an mmap'ed file. */
class Arena
{
  public:
    enum class Mode { kInMemory, kFileBacked, kReadOnlyMapped };

    /**
     * Memory-map an existing file read-only (used by pgb::store to
     * load `.pgbi` artifacts without slurping them). Unlike the
     * best-effort file-backed write mode, loading fails closed:
     * open/fstat failures are fatal(); an mmap failure degrades to a
     * single bulk read into memory with a warn(), since the caller
     * only needs the bytes, not the mapping. The file is never
     * modified or unlinked. append()/reserve() on the result panic().
     */
    static Arena mapReadOnly(const std::string &path);

    /**
     * @param mode storage mode (kFileBacked degrades to kInMemory with
     *        a warning when the backing file cannot be set up)
     * @param path file path for kFileBacked (empty = anonymous temp file
     *        under $TMPDIR)
     */
    explicit Arena(Mode mode = Mode::kInMemory, std::string path = "");

    ~Arena();

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;
    Arena(Arena &&other) noexcept;
    Arena &operator=(Arena &&other) noexcept;

    /** Ensure capacity for @p bytes; existing contents are preserved. */
    void reserve(size_t bytes);

    /**
     * Append @p bytes bytes from @p data.
     * @return byte offset of the appended region.
     */
    size_t append(const void *data, size_t bytes);

    /** Pointer to the byte at @p offset. Stable until the next growth. */
    uint8_t *at(size_t offset);
    const uint8_t *at(size_t offset) const;

    /** Bytes appended so far. */
    size_t size() const { return size_; }

    /** Current storage mode (kInMemory after a degraded fallback). */
    Mode mode() const { return mode_; }

    /** Backing file path (empty in kInMemory mode). */
    const std::string &path() const { return path_; }

  private:
    void grow(size_t min_capacity);
    void degradeToMemory(size_t min_capacity);
    void release();

    Mode mode_;
    std::string path_;
    int fd_ = -1;
    uint8_t *data_ = nullptr;
    size_t size_ = 0;
    size_t capacity_ = 0;
    bool unlinkOnClose_ = false;
};

} // namespace pgb::core

#endif // PGB_CORE_ARENA_HPP
