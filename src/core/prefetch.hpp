/**
 * @file
 * Portable software-prefetch shim.
 *
 * The minimizer bucket probe and the GBWT last-first walk are
 * MPKI-dominated (paper Figure 7): each step's next cache line is
 * data-dependent but computable one iteration ahead. prefetchRead()
 * lowers to __builtin_prefetch where the compiler has it and to a
 * no-op elsewhere, so hot loops can hide that latency without any
 * platform ifdefs at the call site. Prefetching is advisory — wrong
 * or out-of-range addresses are harmless — so call sites may issue it
 * speculatively.
 */

#ifndef PGB_CORE_PREFETCH_HPP
#define PGB_CORE_PREFETCH_HPP

namespace pgb::core {

#if defined(__GNUC__) || defined(__clang__)

/** Hint that @p address will be read soon (temporal locality 0-3). */
inline void
prefetchRead(const void *address, int locality = 3)
{
    switch (locality) {
      case 0: __builtin_prefetch(address, 0, 0); break;
      case 1: __builtin_prefetch(address, 0, 1); break;
      case 2: __builtin_prefetch(address, 0, 2); break;
      default: __builtin_prefetch(address, 0, 3); break;
    }
}

#else

inline void
prefetchRead(const void *, int = 3)
{
}

#endif

} // namespace pgb::core

#endif // PGB_CORE_PREFETCH_HPP
