#include "core/union_find.hpp"

#include <numeric>

#include "core/logging.hpp"

namespace pgb::core {

void
UnionFind::reset(size_t size)
{
    if (size > 0xFFFFFFFFull)
        fatal("UnionFind supports at most 2^32-1 elements, got ", size);
    parent_.resize(size);
    std::iota(parent_.begin(), parent_.end(), 0u);
    sizes_.assign(size, 1);
    setCount_ = size;
}

size_t
UnionFind::find(size_t element)
{
    auto node = static_cast<uint32_t>(element);
    while (parent_[node] != node) {
        parent_[node] = parent_[parent_[node]]; // path halving
        node = parent_[node];
    }
    return node;
}

size_t
UnionFind::unite(size_t a, size_t b)
{
    auto ra = static_cast<uint32_t>(find(a));
    auto rb = static_cast<uint32_t>(find(b));
    if (ra == rb)
        return ra;
    if (sizes_[ra] < sizes_[rb])
        std::swap(ra, rb);
    parent_[rb] = ra;
    sizes_[ra] += sizes_[rb];
    --setCount_;
    return ra;
}

void
UnionFind::adoptFrom(ConcurrentUnionFind &source)
{
    if (source.size() != parent_.size()) {
        fatal("UnionFind::adoptFrom: size mismatch (", parent_.size(),
              " vs ", source.size(), ")");
    }
    setCount_ = 0;
    for (size_t i = 0; i < parent_.size(); ++i) {
        const auto root = static_cast<uint32_t>(source.find(i));
        parent_[i] = root;
        if (root == i)
            ++setCount_;
    }
}

ConcurrentUnionFind::ConcurrentUnionFind(size_t size) : size_(size)
{
    if (size > 0xFFFFFFFFull) {
        fatal("ConcurrentUnionFind supports at most 2^32-1 elements, "
              "got ",
              size);
    }
    parent_ = std::make_unique<std::atomic<uint32_t>[]>(size);
    for (size_t i = 0; i < size; ++i)
        parent_[i].store(static_cast<uint32_t>(i),
                         std::memory_order_relaxed);
}

size_t
ConcurrentUnionFind::find(size_t element)
{
    auto node = static_cast<uint32_t>(element);
    for (;;) {
        uint32_t p = parent_[node].load(std::memory_order_acquire);
        if (p == node)
            return p;
        const uint32_t gp = parent_[p].load(std::memory_order_acquire);
        if (gp == p)
            return p;
        // Path halving; losing the race just skips one shortcut.
        parent_[node].compare_exchange_weak(p, gp,
                                            std::memory_order_release,
                                            std::memory_order_relaxed);
        node = gp;
    }
}

bool
ConcurrentUnionFind::unite(size_t a, size_t b)
{
    auto ra = static_cast<uint32_t>(find(a));
    auto rb = static_cast<uint32_t>(find(b));
    for (;;) {
        if (ra == rb)
            return false;
        // Deterministic link direction: the larger root is always
        // re-parented under the smaller, so the surviving
        // representative of every set is its minimum element no matter
        // how threads interleave.
        if (ra < rb)
            std::swap(ra, rb);
        uint32_t expected = ra;
        if (parent_[ra].compare_exchange_strong(
                expected, rb, std::memory_order_acq_rel,
                std::memory_order_acquire)) {
            return true;
        }
        // ra gained a parent concurrently; chase the new roots.
        ra = static_cast<uint32_t>(find(expected));
        rb = static_cast<uint32_t>(find(rb));
    }
}

size_t
ConcurrentUnionFind::countSets()
{
    size_t roots = 0;
    for (size_t i = 0; i < size_; ++i) {
        if (parent_[i].load(std::memory_order_relaxed) == i)
            ++roots;
    }
    return roots;
}

} // namespace pgb::core
