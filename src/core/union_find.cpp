#include "core/union_find.hpp"

#include <numeric>

#include "core/logging.hpp"

namespace pgb::core {

void
UnionFind::reset(size_t size)
{
    if (size > 0xFFFFFFFFull)
        fatal("UnionFind supports at most 2^32-1 elements, got ", size);
    parent_.resize(size);
    std::iota(parent_.begin(), parent_.end(), 0u);
    sizes_.assign(size, 1);
    setCount_ = size;
}

size_t
UnionFind::find(size_t element)
{
    auto node = static_cast<uint32_t>(element);
    while (parent_[node] != node) {
        parent_[node] = parent_[parent_[node]]; // path halving
        node = parent_[node];
    }
    return node;
}

size_t
UnionFind::unite(size_t a, size_t b)
{
    auto ra = static_cast<uint32_t>(find(a));
    auto rb = static_cast<uint32_t>(find(b));
    if (ra == rb)
        return ra;
    if (sizes_[ra] < sizes_[rb])
        std::swap(ra, rb);
    parent_[rb] = ra;
    sizes_[ra] += sizes_[rb];
    --setCount_;
    return ra;
}

} // namespace pgb::core
