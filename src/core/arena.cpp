#include "core/arena.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "core/fault.hpp"
#include "core/logging.hpp"
#include "obs/metrics.hpp"

namespace pgb::core {

namespace {

constexpr size_t kInitialCapacity = 1 << 20;

FaultSite faultArenaOpen(
    "arena.open", "warn + in-memory fallback; results unchanged");
FaultSite faultArenaTruncate(
    "arena.ftruncate", "warn + in-memory fallback; results unchanged");
FaultSite faultArenaMmap(
    "arena.mmap", "warn + in-memory fallback; results unchanged");

// An arena-degradation storm (every file-backed arena silently falling
// back to RAM on a full scratch disk) is invisible without telemetry;
// these counters surface it in every --metrics report.
obs::Counter obsBytesMapped("arena.bytes_mapped");
obs::Counter obsDegradations("arena.degradations");

size_t
roundUpPage(size_t bytes)
{
    const size_t page = 4096;
    return (bytes + page - 1) / page * page;
}

} // namespace

Arena::Arena(Mode mode, std::string path)
    : mode_(mode), path_(std::move(path))
{
    if (mode_ != Mode::kFileBacked)
        return;
    if (path_.empty()) {
        const char *tmp = std::getenv("TMPDIR");
        path_ = std::string(tmp ? tmp : "/tmp") + "/pgb_arena_XXXXXX";
        fd_ = mkstemp(path_.data());
        unlinkOnClose_ = true;
    } else {
        fd_ = open(path_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600);
    }
    if (fd_ >= 0 && faultArenaOpen.fire()) {
        close(fd_);
        if (unlinkOnClose_)
            unlink(path_.c_str());
        fd_ = -1;
        errno = EIO;
    }
    if (fd_ < 0) {
        warn("Arena: cannot open backing file '", path_, "': ",
             std::strerror(errno), "; falling back to in-memory storage");
        mode_ = Mode::kInMemory;
        path_.clear();
        unlinkOnClose_ = false;
    }
}

Arena
Arena::mapReadOnly(const std::string &path)
{
    Arena arena(Mode::kInMemory);
    arena.mode_ = Mode::kReadOnlyMapped;
    arena.path_ = path;
    arena.fd_ = open(path.c_str(), O_RDONLY);
    if (arena.fd_ < 0) {
        fatal(path, ": cannot open: ", std::strerror(errno));
    }
    struct stat info = {};
    if (fstat(arena.fd_, &info) != 0) {
        const int err = errno;
        close(arena.fd_);
        arena.fd_ = -1;
        fatal(path, ": cannot stat: ", std::strerror(err));
    }
    const auto bytes = static_cast<size_t>(info.st_size);
    arena.size_ = bytes;
    arena.capacity_ = bytes;
    if (bytes == 0)
        return arena;
    void *mapped =
        mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, arena.fd_, 0);
    if (mapped == MAP_FAILED) {
        // The caller only needs the bytes; fall back to one bulk read.
        warn("Arena: mmap of '", path, "' (", bytes,
             " bytes) failed: ", std::strerror(errno),
             "; reading into memory instead");
        auto *mem = static_cast<uint8_t *>(std::malloc(bytes));
        if (mem == nullptr)
            fatal(path, ": out of memory reading ", bytes, " bytes");
        size_t done = 0;
        while (done < bytes) {
            const ssize_t got =
                pread(arena.fd_, mem + done, bytes - done,
                      static_cast<off_t>(done));
            if (got <= 0) {
                std::free(mem);
                fatal(path, ": short read at byte ", done, ": ",
                      got < 0 ? std::strerror(errno) : "unexpected EOF");
            }
            done += static_cast<size_t>(got);
        }
        close(arena.fd_);
        arena.fd_ = -1;
        arena.mode_ = Mode::kInMemory;
        arena.data_ = mem;
        return arena;
    }
    obsBytesMapped.add(bytes);
    arena.data_ = static_cast<uint8_t *>(mapped);
    return arena;
}

Arena::~Arena()
{
    release();
}

Arena::Arena(Arena &&other) noexcept
    : mode_(other.mode_), path_(std::move(other.path_)), fd_(other.fd_),
      data_(other.data_), size_(other.size_), capacity_(other.capacity_),
      unlinkOnClose_(other.unlinkOnClose_)
{
    other.fd_ = -1;
    other.data_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
    other.unlinkOnClose_ = false;
}

Arena &
Arena::operator=(Arena &&other) noexcept
{
    if (this != &other) {
        release();
        mode_ = other.mode_;
        path_ = std::move(other.path_);
        fd_ = other.fd_;
        data_ = other.data_;
        size_ = other.size_;
        capacity_ = other.capacity_;
        unlinkOnClose_ = other.unlinkOnClose_;
        other.fd_ = -1;
        other.data_ = nullptr;
        other.size_ = 0;
        other.capacity_ = 0;
        other.unlinkOnClose_ = false;
    }
    return *this;
}

void
Arena::release()
{
    if (data_ != nullptr) {
        if (mode_ == Mode::kInMemory)
            std::free(data_);
        else
            munmap(data_, capacity_);
        data_ = nullptr;
    }
    if (fd_ >= 0) {
        close(fd_);
        fd_ = -1;
        if (unlinkOnClose_)
            unlink(path_.c_str());
    }
}

/**
 * Abandon the backing file and continue in memory with at least
 * @p min_capacity bytes: the storage contract (contents, offsets)
 * survives, only the RAM-overcommit advantage is lost.
 */
void
Arena::degradeToMemory(size_t min_capacity)
{
    obsDegradations.add();
    auto *mem = static_cast<uint8_t *>(std::malloc(min_capacity));
    if (mem == nullptr) {
        fatal("Arena: out of memory falling back from file-backed "
              "storage (", min_capacity, " bytes)");
    }
    if (data_ != nullptr) {
        std::memcpy(mem, data_, size_);
        munmap(data_, capacity_);
    }
    if (fd_ >= 0) {
        close(fd_);
        fd_ = -1;
        if (unlinkOnClose_)
            unlink(path_.c_str());
    }
    mode_ = Mode::kInMemory;
    path_.clear();
    unlinkOnClose_ = false;
    data_ = mem;
    capacity_ = min_capacity;
}

void
Arena::grow(size_t min_capacity)
{
    if (mode_ == Mode::kReadOnlyMapped)
        panic("Arena: cannot grow a read-only mapped arena");
    size_t new_capacity = capacity_ == 0 ? kInitialCapacity : capacity_;
    while (new_capacity < min_capacity)
        new_capacity *= 2;
    new_capacity = roundUpPage(new_capacity);

    if (mode_ == Mode::kFileBacked) {
        if (ftruncate(fd_, static_cast<off_t>(new_capacity)) != 0 ||
            faultArenaTruncate.fire()) {
            warn("Arena: ftruncate('", path_, "') to ", new_capacity,
                 " bytes failed: ", std::strerror(errno),
                 "; falling back to in-memory storage");
            degradeToMemory(new_capacity);
            return;
        }
        void *mapped = mmap(nullptr, new_capacity, PROT_READ | PROT_WRITE,
                            MAP_SHARED, fd_, 0);
        if (mapped != MAP_FAILED && faultArenaMmap.fire()) {
            munmap(mapped, new_capacity);
            mapped = MAP_FAILED;
            errno = ENOMEM;
        }
        if (mapped == MAP_FAILED) {
            warn("Arena: mmap of '", path_, "' (", new_capacity,
                 " bytes) failed: ", std::strerror(errno),
                 "; falling back to in-memory storage");
            degradeToMemory(new_capacity);
            return;
        }
        if (data_ != nullptr) {
            std::memcpy(mapped, data_, size_);
            munmap(data_, capacity_);
        }
        obsBytesMapped.add(new_capacity);
        data_ = static_cast<uint8_t *>(mapped);
    } else {
        auto *mem = static_cast<uint8_t *>(
            std::realloc(data_, new_capacity));
        if (mem == nullptr)
            fatal("Arena: out of memory growing to ", new_capacity);
        data_ = mem;
    }
    capacity_ = new_capacity;
}

void
Arena::reserve(size_t bytes)
{
    if (bytes > capacity_)
        grow(bytes);
}

size_t
Arena::append(const void *data, size_t bytes)
{
    if (size_ + bytes > capacity_)
        grow(size_ + bytes);
    std::memcpy(data_ + size_, data, bytes);
    const size_t offset = size_;
    size_ += bytes;
    return offset;
}

uint8_t *
Arena::at(size_t offset)
{
    return data_ + offset;
}

const uint8_t *
Arena::at(size_t offset) const
{
    return data_ + offset;
}

} // namespace pgb::core
