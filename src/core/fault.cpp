#include "core/fault.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>

#include "core/logging.hpp"
#include "obs/metrics.hpp"

namespace pgb::core {

/**
 * Process-wide site registry. Sites self-register from their static
 * constructors; arms targeting not-yet-registered sites wait in
 * `pending` so PGB_FAULT works regardless of static-init order.
 */
struct FaultRegistry
{
    std::mutex lock;
    std::vector<FaultSite *> registered;
    std::map<std::string, uint64_t> pending;

    static FaultRegistry &
    instance()
    {
        static FaultRegistry registry;
        return registry;
    }

    FaultRegistry()
    {
        const char *spec = std::getenv("PGB_FAULT");
        if (spec != nullptr)
            applySpec(spec);
        // Per-site hit counts ride into every metrics snapshot. Site
        // names are dynamic, so this is a provider, not obs::Counters.
        obs::registerProvider(
            [this](std::vector<std::pair<std::string, int64_t>> &out) {
                std::lock_guard<std::mutex> guard(lock);
                for (const FaultSite *site : registered) {
                    out.emplace_back(
                        "fault." + std::string(site->name()) + ".hits",
                        static_cast<int64_t>(site->hits()));
                }
            });
    }

    /** Parse "site[:n][,site[:n]...]"; bad entries warn and are skipped. */
    void
    applySpec(const std::string &spec)
    {
        size_t start = 0;
        while (start <= spec.size()) {
            size_t comma = spec.find(',', start);
            if (comma == std::string::npos)
                comma = spec.size();
            const std::string entry = spec.substr(start, comma - start);
            start = comma + 1;
            if (entry.empty())
                continue;
            const size_t colon = entry.find(':');
            const std::string name = entry.substr(0, colon);
            uint64_t nth = 1;
            if (colon != std::string::npos) {
                const std::string count = entry.substr(colon + 1);
                char *end = nullptr;
                nth = std::strtoull(count.c_str(), &end, 10);
                if (count.empty() || *end != '\0' || nth == 0) {
                    warn("PGB_FAULT: bad trigger count in '", entry,
                         "' (want site:n with n >= 1); entry ignored");
                    continue;
                }
            }
            armByName(name, nth);
        }
    }

    void
    armByName(const std::string &name, uint64_t nth)
    {
        std::lock_guard<std::mutex> guard(lock);
        if (FaultSite *site = find(name))
            armSite(*site, nth);
        else
            pending[name] = nth;
    }

    FaultSite *
    find(const std::string &name) // lock held
    {
        for (FaultSite *site : registered) {
            if (name == site->name_)
                return site;
        }
        return nullptr;
    }

    static void
    armSite(FaultSite &site, uint64_t nth) // lock held
    {
        site.remaining_.store(nth, std::memory_order_relaxed);
        site.armed_.store(true, std::memory_order_release);
    }

    static void
    disarmSite(FaultSite &site) // lock held
    {
        site.armed_.store(false, std::memory_order_relaxed);
        site.remaining_.store(0, std::memory_order_relaxed);
    }
};

FaultSite::FaultSite(const char *name) : name_(name)
{
    FaultRegistry &registry = FaultRegistry::instance();
    std::lock_guard<std::mutex> guard(registry.lock);
    registry.registered.push_back(this);
    const auto it = registry.pending.find(name_);
    if (it != registry.pending.end()) {
        FaultRegistry::armSite(*this, it->second);
        registry.pending.erase(it);
    }
}

bool
FaultSite::fireSlow()
{
    const uint64_t before =
        remaining_.fetch_sub(1, std::memory_order_acq_rel);
    if (before == 1) {
        armed_.store(false, std::memory_order_relaxed);
        return true;
    }
    if (before == 0) {
        // Raced past the trigger after another thread fired it.
        remaining_.store(0, std::memory_order_relaxed);
        armed_.store(false, std::memory_order_relaxed);
    }
    return false;
}

namespace fault {

void
arm(const std::string &site, uint64_t nth)
{
    if (nth == 0)
        fatal("fault::arm('", site, "'): trigger count must be >= 1");
    FaultRegistry::instance().armByName(site, nth);
}

void
disarm(const std::string &site)
{
    FaultRegistry &registry = FaultRegistry::instance();
    std::lock_guard<std::mutex> guard(registry.lock);
    if (FaultSite *found = registry.find(site))
        FaultRegistry::disarmSite(*found);
    registry.pending.erase(site);
}

void
disarmAll()
{
    FaultRegistry &registry = FaultRegistry::instance();
    std::lock_guard<std::mutex> guard(registry.lock);
    for (FaultSite *site : registry.registered)
        FaultRegistry::disarmSite(*site);
    registry.pending.clear();
}

void
configure(const std::string &spec)
{
    FaultRegistry::instance().applySpec(spec);
}

std::vector<std::string>
sites()
{
    FaultRegistry &registry = FaultRegistry::instance();
    std::lock_guard<std::mutex> guard(registry.lock);
    std::vector<std::string> names;
    names.reserve(registry.registered.size());
    for (const FaultSite *site : registry.registered)
        names.emplace_back(site->name());
    std::sort(names.begin(), names.end());
    return names;
}

bool
armed(const std::string &site)
{
    FaultRegistry &registry = FaultRegistry::instance();
    std::lock_guard<std::mutex> guard(registry.lock);
    const FaultSite *found = registry.find(site);
    return found != nullptr && found->isArmed();
}

} // namespace fault

} // namespace pgb::core
