#include "core/fault.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>

#include "core/logging.hpp"
#include "obs/metrics.hpp"

namespace pgb::core {

namespace fault::detail {

std::atomic<bool> chaosOn{false};

namespace {

// Chaos schedule parameters. Written only under the registry lock and
// strictly before chaosOn flips true; read relaxed on the fire() path.
std::atomic<uint64_t> chaosSeed{0};
std::atomic<uint64_t> chaosThreshold{0};

/** splitmix64 finalizer: a cheap, well-mixed 64-bit hash. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

bool
chaosFire(uint64_t nameHash, uint64_t hit)
{
    const uint64_t threshold =
        chaosThreshold.load(std::memory_order_relaxed);
    if (threshold == 0)
        return false;
    const uint64_t seed = chaosSeed.load(std::memory_order_relaxed);
    const uint64_t draw =
        mix64(seed ^ nameHash ^ (hit * 0x2545f4914f6cdd1dull));
    return draw < threshold;
}

} // namespace fault::detail

/**
 * Process-wide site registry. Sites self-register from their static
 * constructors; arms targeting not-yet-registered sites wait in
 * `pending` so PGB_FAULT works regardless of static-init order.
 */
struct FaultRegistry
{
    std::mutex lock;
    std::vector<FaultSite *> registered;
    std::map<std::string, uint64_t> pending;

    static FaultRegistry &
    instance()
    {
        static FaultRegistry registry;
        return registry;
    }

    FaultRegistry()
    {
        const char *spec = std::getenv("PGB_FAULT");
        if (spec != nullptr)
            applySpec(spec);
        const char *chaosSpec = std::getenv("PGB_FAULT_CHAOS");
        if (chaosSpec != nullptr)
            applyChaosSpec(chaosSpec);
        // Per-site hit counts ride into every metrics snapshot. Site
        // names are dynamic, so this is a provider, not obs::Counters.
        // Sites sharing a name are one logical site (the chaos tests
        // rely on this); their hits merge so snapshot names stay
        // unique.
        obs::registerProvider(
            [this](std::vector<std::pair<std::string, int64_t>> &out) {
                std::map<std::string, int64_t> merged;
                {
                    std::lock_guard<std::mutex> guard(lock);
                    for (const FaultSite *site : registered) {
                        merged["fault." + std::string(site->name()) +
                               ".hits"] +=
                            static_cast<int64_t>(site->hits());
                    }
                }
                for (auto &[name, hits] : merged)
                    out.emplace_back(name, hits);
            });
    }

    /** Parse "site[:n][,site[:n]...]"; bad entries warn and are skipped. */
    void
    applySpec(const std::string &spec)
    {
        size_t start = 0;
        while (start <= spec.size()) {
            size_t comma = spec.find(',', start);
            if (comma == std::string::npos)
                comma = spec.size();
            const std::string entry = spec.substr(start, comma - start);
            start = comma + 1;
            if (entry.empty())
                continue;
            const size_t colon = entry.find(':');
            const std::string name = entry.substr(0, colon);
            uint64_t nth = 1;
            if (colon != std::string::npos) {
                const std::string count = entry.substr(colon + 1);
                char *end = nullptr;
                nth = std::strtoull(count.c_str(), &end, 10);
                if (count.empty() || *end != '\0' || nth == 0) {
                    warn("PGB_FAULT: bad trigger count in '", entry,
                         "' (want site:n with n >= 1); entry ignored");
                    continue;
                }
            }
            armByName(name, nth);
        }
    }

    /** Parse "seed:p"; a bad spec warns and leaves chaos off. */
    void
    applyChaosSpec(const std::string &spec)
    {
        const size_t colon = spec.find(':');
        bool ok = colon != std::string::npos && colon > 0 &&
                  colon + 1 < spec.size();
        uint64_t seed = 0;
        double probability = 0.0;
        if (ok) {
            const std::string seedText = spec.substr(0, colon);
            const std::string probText = spec.substr(colon + 1);
            char *end = nullptr;
            seed = std::strtoull(seedText.c_str(), &end, 10);
            ok = end != nullptr && *end == '\0';
            if (ok) {
                probability = std::strtod(probText.c_str(), &end);
                ok = end != nullptr && *end == '\0' &&
                     probability >= 0.0 && probability <= 1.0;
            }
        }
        if (!ok) {
            warn("PGB_FAULT_CHAOS: bad spec '", spec,
                 "' (want seed:p with p in [0,1]); chaos disabled");
            return;
        }
        fault::chaos(seed, probability);
    }

    void
    armByName(const std::string &name, uint64_t nth)
    {
        std::lock_guard<std::mutex> guard(lock);
        if (FaultSite *site = find(name))
            armSite(*site, nth);
        else
            pending[name] = nth;
    }

    FaultSite *
    find(const std::string &name) // lock held
    {
        for (FaultSite *site : registered) {
            if (name == site->name_)
                return site;
        }
        return nullptr;
    }

    static void
    armSite(FaultSite &site, uint64_t nth) // lock held
    {
        site.remaining_.store(nth, std::memory_order_relaxed);
        site.armed_.store(true, std::memory_order_release);
    }

    static void
    disarmSite(FaultSite &site) // lock held
    {
        site.armed_.store(false, std::memory_order_relaxed);
        site.remaining_.store(0, std::memory_order_relaxed);
    }
};

FaultSite::FaultSite(const char *name, const char *recovery)
    : name_(name), recovery_(recovery),
      nameHash_(fault::detail::nameHash(name))
{
    FaultRegistry &registry = FaultRegistry::instance();
    std::lock_guard<std::mutex> guard(registry.lock);
    registry.registered.push_back(this);
    const auto it = registry.pending.find(name_);
    if (it != registry.pending.end()) {
        FaultRegistry::armSite(*this, it->second);
        registry.pending.erase(it);
    }
}

bool
FaultSite::fireSlow()
{
    const uint64_t before =
        remaining_.fetch_sub(1, std::memory_order_acq_rel);
    if (before == 1) {
        armed_.store(false, std::memory_order_relaxed);
        return true;
    }
    if (before == 0) {
        // Raced past the trigger after another thread fired it.
        remaining_.store(0, std::memory_order_relaxed);
        armed_.store(false, std::memory_order_relaxed);
    }
    return false;
}

namespace fault {

void
arm(const std::string &site, uint64_t nth)
{
    if (nth == 0)
        fatal("fault::arm('", site, "'): trigger count must be >= 1");
    FaultRegistry::instance().armByName(site, nth);
}

void
disarm(const std::string &site)
{
    FaultRegistry &registry = FaultRegistry::instance();
    std::lock_guard<std::mutex> guard(registry.lock);
    if (FaultSite *found = registry.find(site))
        FaultRegistry::disarmSite(*found);
    registry.pending.erase(site);
}

void
disarmAll()
{
    FaultRegistry &registry = FaultRegistry::instance();
    std::lock_guard<std::mutex> guard(registry.lock);
    for (FaultSite *site : registry.registered)
        FaultRegistry::disarmSite(*site);
    registry.pending.clear();
}

void
configure(const std::string &spec)
{
    FaultRegistry::instance().applySpec(spec);
}

void
chaos(uint64_t seed, double probability)
{
    // Touches only atomics — callable from the registry constructor
    // (PGB_FAULT_CHAOS parsing) without re-entering instance().
    probability = std::clamp(probability, 0.0, 1.0);
    // p maps onto a uint64 threshold: draw < p * 2^64 fires. p == 1
    // saturates (2^64 does not fit); p == 0 keeps the schedule active
    // but never firing — chaosEnabled() reports the operator's intent,
    // not whether any draw can succeed.
    uint64_t threshold = 0;
    if (probability >= 1.0)
        threshold = UINT64_MAX;
    else
        threshold = static_cast<uint64_t>(
            probability * 18446744073709551616.0);
    detail::chaosSeed.store(seed, std::memory_order_relaxed);
    detail::chaosThreshold.store(threshold, std::memory_order_relaxed);
    detail::chaosOn.store(true, std::memory_order_release);
}

void
chaosOff()
{
    detail::chaosOn.store(false, std::memory_order_relaxed);
    detail::chaosThreshold.store(0, std::memory_order_relaxed);
}

bool
chaosEnabled()
{
    return detail::chaosOn.load(std::memory_order_relaxed);
}

std::vector<std::string>
sites()
{
    FaultRegistry &registry = FaultRegistry::instance();
    std::lock_guard<std::mutex> guard(registry.lock);
    std::vector<std::string> names;
    names.reserve(registry.registered.size());
    for (const FaultSite *site : registry.registered)
        names.emplace_back(site->name());
    std::sort(names.begin(), names.end());
    return names;
}

std::vector<SiteInfo>
siteInfos()
{
    FaultRegistry &registry = FaultRegistry::instance();
    std::lock_guard<std::mutex> guard(registry.lock);
    std::vector<SiteInfo> infos;
    infos.reserve(registry.registered.size());
    for (const FaultSite *site : registry.registered)
        infos.push_back({site->name(), site->recovery()});
    std::sort(infos.begin(), infos.end(),
              [](const SiteInfo &a, const SiteInfo &b) {
                  return a.name < b.name;
              });
    return infos;
}

bool
armed(const std::string &site)
{
    FaultRegistry &registry = FaultRegistry::instance();
    std::lock_guard<std::mutex> guard(registry.lock);
    const FaultSite *found = registry.find(site);
    return found != nullptr && found->isArmed();
}

} // namespace fault

} // namespace pgb::core
