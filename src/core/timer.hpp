/**
 * @file
 * Wall-clock timing utilities used by pipeline stage breakdowns and the
 * kernel benchmarks.
 */

#ifndef PGB_CORE_TIMER_HPP
#define PGB_CORE_TIMER_HPP

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace pgb::core {

/**
 * Nanoseconds on the monotonic clock, from an arbitrary epoch. The
 * timestamp source for tracing spans (obs::Span): one steady_clock
 * read, no formatting.
 */
inline uint64_t
monotonicNanos()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Monotonic wall-clock stopwatch. */
class WallTimer
{
  public:
    WallTimer() { reset(); }

    /** Restart the stopwatch at zero. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed seconds since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Elapsed milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * Named stage timer used by the pipelines to produce the Figure 2 /
 * Figure 3 per-stage breakdowns. Stages accumulate across calls, so a
 * pipeline may enter the same stage repeatedly (e.g. per read batch).
 */
class StageTimers
{
  public:
    /** RAII scope that charges its lifetime to one named stage. */
    class Scope
    {
      public:
        Scope(StageTimers &owner, const std::string &stage)
            : owner_(owner), stage_(stage)
        {
        }

        ~Scope() { owner_.add(stage_, timer_.seconds()); }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        StageTimers &owner_;
        std::string stage_;
        WallTimer timer_;
    };

    /** Charge @p seconds to @p stage. */
    void add(const std::string &stage, double seconds)
    {
        stages_[stage] += seconds;
    }

    /** Accumulated seconds for @p stage (0 if never entered). */
    double
    seconds(const std::string &stage) const
    {
        auto it = stages_.find(stage);
        return it == stages_.end() ? 0.0 : it->second;
    }

    /** Sum of all stage times. */
    double
    total() const
    {
        double sum = 0.0;
        for (const auto &[name, secs] : stages_)
            sum += secs;
        return sum;
    }

    const std::map<std::string, double> &stages() const { return stages_; }

    void clear() { stages_.clear(); }

  private:
    std::map<std::string, double> stages_;
};

} // namespace pgb::core

#endif // PGB_CORE_TIMER_HPP
