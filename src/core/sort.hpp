/**
 * @file
 * High-throughput sorting helpers.
 *
 * The transclosure kernel sorts large arrays of 64-bit keys (seqwish
 * uses in-place parallel super-scalar samplesort, paper reference [37]).
 * We provide an LSD radix sort for u64 keys and key-extracted records,
 * which has the same role: sorting dominates TC setup, and a radix sort
 * keeps it retiring-heavy, as the paper observes.
 */

#ifndef PGB_CORE_SORT_HPP
#define PGB_CORE_SORT_HPP

#include <array>
#include <cstdint>
#include <vector>

namespace pgb::core {

/**
 * LSD radix sort of @p keys by full 64-bit value, 8 bits per pass.
 * Stable; O(8n) with two buffers.
 */
inline void
radixSortU64(std::vector<uint64_t> &keys)
{
    if (keys.size() < 2)
        return;
    std::vector<uint64_t> buffer(keys.size());
    uint64_t *src = keys.data();
    uint64_t *dst = buffer.data();
    for (int shift = 0; shift < 64; shift += 8) {
        std::array<size_t, 256> counts{};
        for (size_t i = 0; i < keys.size(); ++i)
            ++counts[(src[i] >> shift) & 0xFF];
        if (counts[0] == keys.size())
            continue; // all keys share this byte; skip the pass
        size_t offset = 0;
        for (auto &count : counts) {
            const size_t c = count;
            count = offset;
            offset += c;
        }
        for (size_t i = 0; i < keys.size(); ++i)
            dst[counts[(src[i] >> shift) & 0xFF]++] = src[i];
        std::swap(src, dst);
    }
    if (src != keys.data())
        keys.assign(src, src + keys.size());
}

/**
 * Stable LSD radix sort of @p records by a u64 key extracted with
 * @p key_of, 8 bits per pass.
 */
template <typename Record, typename KeyOf>
void
radixSortBy(std::vector<Record> &records, KeyOf key_of)
{
    if (records.size() < 2)
        return;
    std::vector<Record> buffer(records.size());
    Record *src = records.data();
    Record *dst = buffer.data();
    bool swapped = false;
    for (int shift = 0; shift < 64; shift += 8) {
        std::array<size_t, 256> counts{};
        for (size_t i = 0; i < records.size(); ++i)
            ++counts[(key_of(src[i]) >> shift) & 0xFF];
        if (counts[0] == records.size())
            continue;
        size_t offset = 0;
        for (auto &count : counts) {
            const size_t c = count;
            count = offset;
            offset += c;
        }
        for (size_t i = 0; i < records.size(); ++i)
            dst[counts[(key_of(src[i]) >> shift) & 0xFF]++] =
                std::move(src[i]);
        std::swap(src, dst);
        swapped = !swapped;
    }
    if (swapped) {
        for (size_t i = 0; i < records.size(); ++i)
            records[i] = std::move(buffer[i]);
    }
}

} // namespace pgb::core

#endif // PGB_CORE_SORT_HPP
