/**
 * @file
 * Disjoint-set union-find with path halving and union by size, plus an
 * interval-union extension used by the transclosure kernel to merge
 * whole character ranges at once.
 */

#ifndef PGB_CORE_UNION_FIND_HPP
#define PGB_CORE_UNION_FIND_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pgb::core {

/** Classic disjoint-set forest over dense element indices. */
class UnionFind
{
  public:
    UnionFind() = default;

    /** Construct @p size singleton sets. */
    explicit UnionFind(size_t size) { reset(size); }

    /** Reset to @p size singleton sets. */
    void reset(size_t size);

    size_t size() const { return parent_.size(); }

    /** Representative of the set containing @p element. */
    size_t find(size_t element);

    /**
     * Merge the sets containing @p a and @p b.
     * @return the representative of the merged set.
     */
    size_t unite(size_t a, size_t b);

    /** Whether @p a and @p b are in the same set. */
    bool same(size_t a, size_t b) { return find(a) == find(b); }

    /** Number of distinct sets remaining. */
    size_t setCount() const { return setCount_; }

  private:
    std::vector<uint32_t> parent_;
    std::vector<uint32_t> sizes_;
    size_t setCount_ = 0;
};

} // namespace pgb::core

#endif // PGB_CORE_UNION_FIND_HPP
