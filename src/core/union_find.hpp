/**
 * @file
 * Disjoint-set union-find with path halving and union by size, plus an
 * interval-union extension used by the transclosure kernel to merge
 * whole character ranges at once.
 */

#ifndef PGB_CORE_UNION_FIND_HPP
#define PGB_CORE_UNION_FIND_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace pgb::core {

class ConcurrentUnionFind;

/** Classic disjoint-set forest over dense element indices. */
class UnionFind
{
  public:
    UnionFind() = default;

    /** Construct @p size singleton sets. */
    explicit UnionFind(size_t size) { reset(size); }

    /** Reset to @p size singleton sets. */
    void reset(size_t size);

    size_t size() const { return parent_.size(); }

    /** Representative of the set containing @p element. */
    size_t find(size_t element);

    /**
     * Merge the sets containing @p a and @p b.
     * @return the representative of the merged set.
     */
    size_t unite(size_t a, size_t b);

    /** Whether @p a and @p b are in the same set. */
    bool same(size_t a, size_t b) { return find(a) == find(b); }

    /** Number of distinct sets remaining. */
    size_t setCount() const { return setCount_; }

    /**
     * Replace this forest with the quiescent state of @p source: every
     * element's parent becomes its @p source root, and setCount() is
     * recomputed. Both forests must have the same size. Used to hand a
     * partition built by concurrent sweeps to serial consumers.
     */
    void adoptFrom(ConcurrentUnionFind &source);

  private:
    std::vector<uint32_t> parent_;
    std::vector<uint32_t> sizes_;
    size_t setCount_ = 0;
};

/**
 * Lock-free disjoint-set forest for concurrent unite/find (Anderson &
 * Woll style): roots are linked with a CAS, always larger root under
 * smaller root, so the final representative of every set is its
 * minimum element regardless of thread interleaving — and the final
 * partition is the connectivity closure of the united pairs, which is
 * interleaving-invariant by definition. find() applies path halving
 * with benign CAS races. No setCount() is maintained during the run;
 * call countSets() (or UnionFind::adoptFrom) once mutation stops.
 */
class ConcurrentUnionFind
{
  public:
    /** Construct @p size singleton sets. */
    explicit ConcurrentUnionFind(size_t size);

    size_t size() const { return size_; }

    /** Representative of the set containing @p element (thread-safe). */
    size_t find(size_t element);

    /**
     * Merge the sets containing @p a and @p b (thread-safe).
     * @return true when two distinct sets were merged.
     */
    bool unite(size_t a, size_t b);

    /** Number of distinct sets; only meaningful once mutation stops. */
    size_t countSets();

  private:
    std::unique_ptr<std::atomic<uint32_t>[]> parent_;
    size_t size_ = 0;
};

} // namespace pgb::core

#endif // PGB_CORE_UNION_FIND_HPP
