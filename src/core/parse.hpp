/**
 * @file
 * Shared plumbing for the text readers (GFA, FASTA, FASTQ).
 *
 * Every reader reports malformed input as "<label>: line N: <what>"
 * where the label is the file path (file readers) or the format name
 * (stream readers). In strict mode (the default) the first malformed
 * record is fatal(); in lenient mode malformed records are skipped
 * with a warn() and counted in ParseStats::skipped, so a long
 * characterization campaign survives a bad byte in one record.
 */

#ifndef PGB_CORE_PARSE_HPP
#define PGB_CORE_PARSE_HPP

#include <cstddef>
#include <string>

#include "core/logging.hpp"

namespace pgb::core {

/** How the text readers treat malformed records. */
struct ParseOptions
{
    /** Skip malformed records with a warn() instead of fatal(). */
    bool lenient = false;
};

/** Filled by a reader when the caller passes one. */
struct ParseStats
{
    size_t records = 0; ///< well-formed records kept
    size_t skipped = 0; ///< malformed records dropped (lenient mode)
};

/**
 * Error routing for one parse: strict mode throws a line-numbered
 * FatalError, lenient mode warns, counts the skip, and tells the
 * caller to drop the record.
 */
struct ParseErrors
{
    const std::string &label;
    const ParseOptions &options;
    size_t skipped = 0;

    /** @return true when the record should be skipped (lenient). */
    template <typename... Args>
    bool
    bad(size_t line, const Args &...what)
    {
        if (!options.lenient)
            fatal(label, ": line ", line, ": ", what...);
        warn(label, ": line ", line, ": ", what..., "; skipping record");
        ++skipped;
        return true;
    }
};

} // namespace pgb::core

#endif // PGB_CORE_PARSE_HPP
