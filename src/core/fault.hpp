/**
 * @file
 * Deterministic fault injection.
 *
 * A FaultSite is a named point where a failure can be injected on the
 * Nth hit, so failure paths (worker-thread exceptions, mmap failures,
 * full disks) can be exercised deterministically in tests and from the
 * command line. Sites are declared at namespace scope next to the
 * operation they guard and registered in a global registry:
 *
 *     namespace { core::FaultSite faultMmap("arena.mmap"); }
 *     ...
 *     if (mapped == MAP_FAILED || faultMmap.fire()) { <failure path> }
 *
 * Site names follow "subsystem.operation" (lowercase, dot-separated).
 * A disarmed site costs one relaxed atomic load per fire() call, so
 * sites may sit on warm paths. Arming is programmatic (fault::arm) or
 * via the PGB_FAULT environment variable, parsed once at startup:
 *
 *     PGB_FAULT=site[:n][,site[:n]...]   fail site's nth hit (default 1)
 *
 * FaultSite objects must have static storage duration: the registry
 * keeps raw pointers for the life of the process.
 */

#ifndef PGB_CORE_FAULT_HPP
#define PGB_CORE_FAULT_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pgb::core {

/** A named point where a failure can be injected deterministically. */
class FaultSite
{
  public:
    /** Register the site under @p name (a string literal). */
    explicit FaultSite(const char *name);

    /**
     * Count a hit against the armed trigger.
     * @return true when this hit is the one configured to fail.
     */
    bool
    fire()
    {
        hits_.fetch_add(1, std::memory_order_relaxed);
        if (!armed_.load(std::memory_order_relaxed))
            return false;
        return fireSlow();
    }

    const char *name() const { return name_; }

    /** Lifetime fire() calls, armed or not — each site doubles as a
     *  hit counter for the obs metrics report ("fault.<site>.hits"). */
    uint64_t
    hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }

    /** Whether a trigger is currently pending on this site. */
    bool
    isArmed() const
    {
        return armed_.load(std::memory_order_relaxed);
    }

  private:
    friend struct FaultRegistry;
    bool fireSlow();

    const char *name_;
    std::atomic<bool> armed_{false};
    std::atomic<uint64_t> remaining_{0};
    std::atomic<uint64_t> hits_{0};
};

namespace fault {

/**
 * Arm @p site to fail on its @p nth upcoming hit (1 = the next hit).
 * A site not registered yet is armed the moment it registers.
 */
void arm(const std::string &site, uint64_t nth = 1);

/** Disarm @p site without firing; no-op when not armed. */
void disarm(const std::string &site);

/** Disarm every site and drop any pending (unregistered) arms. */
void disarmAll();

/** Apply a PGB_FAULT-syntax spec ("site:n[,site:n...]"). */
void configure(const std::string &spec);

/** Names of all registered sites, sorted. */
std::vector<std::string> sites();

/** Whether @p site is registered and currently armed. */
bool armed(const std::string &site);

} // namespace fault

} // namespace pgb::core

#endif // PGB_CORE_FAULT_HPP
