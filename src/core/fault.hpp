/**
 * @file
 * Deterministic fault injection.
 *
 * A FaultSite is a named point where a failure can be injected on the
 * Nth hit, so failure paths (worker-thread exceptions, mmap failures,
 * full disks) can be exercised deterministically in tests and from the
 * command line. Sites are declared at namespace scope next to the
 * operation they guard and registered in a global registry:
 *
 *     namespace { core::FaultSite faultMmap("arena.mmap",
 *                                           "fatal; rerun the build"); }
 *     ...
 *     if (mapped == MAP_FAILED || faultMmap.fire()) { <failure path> }
 *
 * Site names follow "subsystem.operation" (lowercase, dot-separated).
 * A disarmed site costs one relaxed atomic load per fire() call, so
 * sites may sit on warm paths. Arming is programmatic (fault::arm) or
 * via the PGB_FAULT environment variable, parsed once at startup:
 *
 *     PGB_FAULT=site[:n][,site[:n]...]   fail site's nth hit (default 1)
 *
 * On top of the deterministic one-shot triggers there is a seeded
 * random schedule — chaos mode — for randomized fault storms:
 *
 *     PGB_FAULT_CHAOS=seed:p    every registered site fails each hit
 *                               independently with probability p
 *
 * The per-hit decision is a pure hash of (seed, site name, hit index),
 * so a chaos run is reproducible from its seed alone: the kth hit of a
 * given site fires identically across runs regardless of thread
 * interleaving or which other sites exist. Chaos layers under the
 * one-shot triggers; both can be active at once.
 *
 * FaultSite objects must have static storage duration: the registry
 * keeps raw pointers for the life of the process.
 */

#ifndef PGB_CORE_FAULT_HPP
#define PGB_CORE_FAULT_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pgb::core {

namespace fault::detail {

/** Chaos-mode fast-path flag; set only via fault::chaos(). */
extern std::atomic<bool> chaosOn;

/** Seeded per-(site, hit) chaos decision; pure in its arguments. */
bool chaosFire(uint64_t nameHash, uint64_t hit);

/** FNV-1a 64 over the site name (stable hash for chaos decisions). */
constexpr uint64_t
nameHash(const char *name)
{
    uint64_t hash = 14695981039346656037ull;
    for (const char *c = name; *c != '\0'; ++c) {
        hash ^= static_cast<uint8_t>(*c);
        hash *= 1099511628211ull;
    }
    return hash;
}

} // namespace fault::detail

/** A named point where a failure can be injected deterministically. */
class FaultSite
{
  public:
    /**
     * Register the site under @p name (a string literal). @p recovery
     * is one line of operator documentation: what the failure path
     * does and how the process recovers (shown by `pgb fault-sites`).
     */
    explicit FaultSite(const char *name, const char *recovery = "");

    /**
     * Count a hit against the armed trigger and the chaos schedule.
     * @return true when this hit is configured (or drawn) to fail.
     */
    bool
    fire()
    {
        const uint64_t hit =
            hits_.fetch_add(1, std::memory_order_relaxed);
        if (fault::detail::chaosOn.load(std::memory_order_relaxed) &&
            fault::detail::chaosFire(nameHash_, hit))
            return true;
        if (!armed_.load(std::memory_order_relaxed))
            return false;
        return fireSlow();
    }

    const char *name() const { return name_; }
    const char *recovery() const { return recovery_; }

    /** Lifetime fire() calls, armed or not — each site doubles as a
     *  hit counter for the obs metrics report ("fault.<site>.hits"). */
    uint64_t
    hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }

    /** Whether a trigger is currently pending on this site. */
    bool
    isArmed() const
    {
        return armed_.load(std::memory_order_relaxed);
    }

  private:
    friend struct FaultRegistry;
    bool fireSlow();

    const char *name_;
    const char *recovery_;
    uint64_t nameHash_;
    std::atomic<bool> armed_{false};
    std::atomic<uint64_t> remaining_{0};
    std::atomic<uint64_t> hits_{0};
};

namespace fault {

/**
 * Arm @p site to fail on its @p nth upcoming hit (1 = the next hit).
 * A site not registered yet is armed the moment it registers.
 */
void arm(const std::string &site, uint64_t nth = 1);

/** Disarm @p site without firing; no-op when not armed. */
void disarm(const std::string &site);

/** Disarm every site and drop any pending (unregistered) arms.
 *  Does not touch the chaos schedule (see chaosOff()). */
void disarmAll();

/** Apply a PGB_FAULT-syntax spec ("site:n[,site:n...]"). */
void configure(const std::string &spec);

/**
 * Enable the seeded random fault schedule: every registered site fails
 * each hit independently with probability @p probability (clamped to
 * [0, 1]), decided by a pure hash of (seed, site, hit index) so a run
 * is reproducible from @p seed alone.
 */
void chaos(uint64_t seed, double probability);

/** Disable the chaos schedule. */
void chaosOff();

/** Whether a chaos schedule is active. */
bool chaosEnabled();

/** Names of all registered sites, sorted. */
std::vector<std::string> sites();

/** A registered site and its documented failure-path recovery. */
struct SiteInfo
{
    std::string name;
    std::string recovery;
};

/** All registered sites with recovery docs, sorted by name. */
std::vector<SiteInfo> siteInfos();

/** Whether @p site is registered and currently armed. */
bool armed(const std::string &site);

} // namespace fault

} // namespace pgb::core

#endif // PGB_CORE_FAULT_HPP
