/**
 * @file
 * Status and error reporting, following the gem5 fatal/panic distinction:
 * fatal() for user errors that prevent continuing, panic() for internal
 * invariant violations (bugs), warn()/inform() for status messages.
 */

#ifndef PGB_CORE_LOGGING_HPP
#define PGB_CORE_LOGGING_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace pgb::core {

/** Thrown by fatal(): a user/configuration error, not a suite bug. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what) : std::runtime_error(what) {}
};

/** Thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what) : std::logic_error(what) {}
};

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &out, const T &head, const Rest &...rest)
{
    out << head;
    formatInto(out, rest...);
}

template <typename... Args>
std::string
format(const Args &...args)
{
    std::ostringstream out;
    formatInto(out, args...);
    return out.str();
}

} // namespace detail

/** Report an unrecoverable user error (bad input, bad configuration). */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError(detail::format("fatal: ", args...));
}

/** Report an internal bug: a condition that should never happen. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError(detail::format("panic: ", args...));
}

/** Print a warning to stderr (does not stop execution). */
void warnMessage(const std::string &message);

/** Print a status message to stderr (does not stop execution). */
void informMessage(const std::string &message);

template <typename... Args>
void
warn(const Args &...args)
{
    warnMessage(detail::format(args...));
}

template <typename... Args>
void
inform(const Args &...args)
{
    informMessage(detail::format(args...));
}

} // namespace pgb::core

#endif // PGB_CORE_LOGGING_HPP
