/**
 * @file
 * `pgb loadgen`: a closed/open-loop load generator for the mapping
 * daemon, with client-side latency measurement.
 *
 * Two arrival disciplines, following the standard serving-benchmark
 * taxonomy:
 *
 *   - **closed loop** (rate = 0): each connection keeps exactly one
 *     request outstanding — send, wait, repeat. Measures best-case
 *     latency and saturation throughput, but suffers coordinated
 *     omission: a slow response *delays subsequent arrivals*, hiding
 *     queueing delay.
 *   - **open loop** (rate > 0): requests arrive on a Poisson schedule
 *     at `rate` requests/second across all connections, regardless of
 *     how fast responses come back. Latency is measured from each
 *     request's *scheduled* arrival time, so a stalled server accrues
 *     the queueing delay it caused — the methodology that makes tail
 *     latency (p99/p999) meaningful under load.
 *
 * Quantiles are computed exactly from the recorded per-request sample
 * vector (not from log-spaced buckets): BENCH_serve.json's p999 is a
 * real order statistic.
 *
 * With `requests = 0` the generator instead makes one sequential pass
 * over the read set (one request per batch of `readsPerRequest`),
 * which — combined with `dumpPath` — is the digest-comparison mode:
 * the concatenated OK bodies, in request order, are byte-identical to
 * `pgb map --dump` output over the same reads iff the daemon's
 * batching changed nothing.
 *
 * Survivability knobs: `timeoutUs` stamps every request with a
 * deadline budget (the daemon answers DEADLINE_EXCEEDED once it
 * lapses), and `maxRetries` retries OVERLOADED responses with
 * exponential backoff + jitter — capped, and *without* restarting the
 * latency clock, so a retried request's tail latency still charges
 * the full client-observed wait (no coordinated omission through the
 * retry path either).
 */

#ifndef PGB_SERVE_LOADGEN_HPP
#define PGB_SERVE_LOADGEN_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "seq/sequence.hpp"
#include "serve/protocol.hpp"

namespace pgb::serve {

/** Load-generator configuration (`pgb loadgen` flags). */
struct LoadgenConfig
{
    /** Daemon socket path to connect to. */
    std::string socketPath;
    /** Concurrent connections. */
    size_t connections = 1;
    /** Total requests across all connections; 0 = one sequential
     *  pass over the read set (digest mode). */
    size_t requests = 0;
    /** Reads bundled into each request. */
    size_t readsPerRequest = 1;
    /** Open-loop arrival rate, requests/second across all
     *  connections; 0 = closed loop. */
    double rate = 0.0;
    /** RNG seed for the Poisson schedule and read sampling. */
    uint64_t seed = 42;
    /** When non-empty, write concatenated OK bodies (request order)
     *  here — the served-output digest artifact. */
    std::string dumpPath;
    /** Per-request deadline budget, microseconds; 0 = no deadline. */
    uint64_t timeoutUs = 0;
    /** Retries per request on OVERLOADED (exponential backoff +
     *  jitter); 0 = report the shed as-is. */
    size_t maxRetries = 0;
    /** Backoff base, microseconds (doubles per attempt, capped). */
    uint64_t retryBaseUs = 1000;
};

/** What one loadgen run measured (client side). */
struct LoadgenReport
{
    uint64_t sent = 0;
    uint64_t ok = 0;
    uint64_t overloaded = 0; ///< terminally shed (retries exhausted)
    uint64_t errors = 0;
    uint64_t deadlineExceeded = 0;
    uint64_t retries = 0; ///< resends after an OVERLOADED response
    double wallSeconds = 0.0;
    /** OK responses per wall second. */
    double throughputRps = 0.0;
    /** Exact order statistics over per-request latency, nanoseconds.
     *  Open loop measures from scheduled arrival (coordinated
     *  omission corrected); closed loop from the actual send. */
    uint64_t p50Nanos = 0;
    uint64_t p99Nanos = 0;
    uint64_t p999Nanos = 0;
    uint64_t maxNanos = 0;
};

/**
 * Run the workload described by @p config against a live daemon,
 * drawing request payloads from @p reads (cycled as needed).
 * fatal()s when the socket cannot be connected, a response cannot be
 * decoded, or the daemon hangs up mid-run.
 */
LoadgenReport runLoadgen(const LoadgenConfig &config,
                         const std::vector<seq::Sequence> &reads);

/**
 * Send one control frame (kPing / kStatus / kReload) to a live daemon
 * and return its response — the client half of `pgb ctl`. fatal()s on
 * connection or framing failures.
 */
Response runControl(const std::string &socketPath, MsgType type);

} // namespace pgb::serve

#endif // PGB_SERVE_LOADGEN_HPP
