#include "serve/batcher.hpp"

#include <chrono>

#include "core/timer.hpp"
#include "obs/metrics.hpp"

namespace pgb::serve {

namespace {

obs::Counter obsBatches("serve.batches");
obs::Counter obsBatchedReads("serve.batched_reads");

} // namespace

Batcher::Batcher(AdmissionQueue &queue, size_t maxBatchReads,
                 uint64_t maxWaitUs)
    : queue_(queue), maxBatchReads_(maxBatchReads == 0 ? 1
                                                       : maxBatchReads),
      maxWaitUs_(maxWaitUs)
{
}

bool
Batcher::nextBatch(std::vector<Pending> &out)
{
    out.clear();
    for (;;) {
        if (!queue_.waitNonEmpty())
            return false; // closed and drained

        // The time window is anchored on the oldest request's
        // admission timestamp (monotonicNanos, i.e. steady_clock):
        // a request that already waited its window out — e.g. behind
        // a long mapBatch call — flushes immediately.
        const uint64_t frontNanos = queue_.frontEnqueueNanos();
        if (frontNanos != 0) {
            const uint64_t windowEnd = frontNanos + maxWaitUs_ * 1000;
            const uint64_t now = core::monotonicNanos();
            const uint64_t remaining =
                windowEnd > now ? windowEnd - now : 0;
            if (remaining > 0) {
                queue_.waitUntil(
                    [this](size_t, size_t weight) {
                        return weight >= maxBatchReads_;
                    },
                    std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(remaining));
            }
        }

        out = queue_.drain(maxBatchReads_);
        if (!out.empty()) {
            obsBatches.add();
            size_t reads = 0;
            for (const Pending &item : out)
                reads += item.reads.size();
            obsBatchedReads.add(reads);
            return true;
        }
        // Lost the items to a close() race; re-evaluate from the top.
    }
}

} // namespace pgb::serve
