#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "core/fault.hpp"
#include "core/logging.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "seq/fasta.hpp"
#include "serve/batcher.hpp"
#include "serve/protocol.hpp"

namespace pgb::serve {

namespace {

// DESIGN.md §6 fault sites: each injects the corresponding syscall
// failure, and each must cost exactly one connection (accept: the
// pending one), never the daemon.
core::FaultSite faultAccept(
    "serve.accept",
    "warn + drop that one pending connection; daemon keeps serving");
core::FaultSite faultRead(
    "serve.read",
    "warn + drop that connection; others unaffected");
core::FaultSite faultWrite(
    "serve.write",
    "warn + drop that connection; the daemon never dies for a peer");
core::FaultSite faultReload(
    "serve.reload",
    "warn + keep serving the previous index; reloads_failed counter");
core::FaultSite faultStall(
    "serve.stall",
    "batch stalls past the watchdog budget; diagnostic dump + exit 1");

obs::Counter obsConnections("serve.connections");
obs::Counter obsRequests("serve.requests");
obs::Counter obsResponses("serve.responses");
obs::Counter obsBadFrames("serve.bad_frames");
obs::Counter obsBadRequests("serve.bad_requests");
obs::Counter obsErrors("serve.errors");
obs::Counter obsDeadlineExceeded("serve.deadline_exceeded");
obs::Counter obsReloadsOk("serve.reloads_ok");
obs::Counter obsReloadsFailed("serve.reloads_failed");
obs::Counter obsWatchdogStalls("serve.watchdog_stalls");
/** Admission-to-response-written latency, the server-side view the
 *  loadgen's client-side quantiles are compared against. */
obs::Histogram obsRequestNanos("serve.request_nanos");

/** Accept/read poll granularity: the upper bound on how stale the
 *  stop flag can get, and thus on shutdown latency. */
constexpr int kPollMillis = 100;

} // namespace

/**
 * One client. The reader thread owns the fd's input side; responses
 * are written by the batcher thread (and by readers, for shed/error
 * replies), serialized by writeLock. `alive` flips once, on the first
 * failure, after which every pending response for this client is
 * silently dropped — the peer is gone, the requests already admitted
 * still map (batch composition is not unwound), only delivery stops.
 */
struct Server::Connection
{
    int readFd = -1;
    int writeFd = -1;
    /** stdio mode borrows fds 0/1 and must not close them. */
    bool ownsFds = false;
    std::mutex writeLock;
    std::atomic<bool> alive{true};

    ~Connection()
    {
        if (ownsFds && readFd >= 0)
            ::close(readFd);
    }

    /** Unblock the peer and stop all future writes. */
    void
    deactivate()
    {
        alive.store(false, std::memory_order_release);
        if (ownsFds && readFd >= 0)
            ::shutdown(readFd, SHUT_RDWR);
    }
};

Server::Server(std::shared_ptr<const pipeline::MappingContext> context,
               ServeConfig config)
    : context_(std::move(context)), config_(std::move(config)),
      mapperConfig_(pipeline::MapperConfig::forTool(config_.profile)),
      queue_(config_.queueDepth)
{
    mapperConfig_.k = context_->k();
    mapperConfig_.w = context_->w();
    mapperConfig_.threads = core::clampThreads(
        config_.threads == 0 ? core::hardwareThreads() : config_.threads);
    // Fail profile/context mismatches (giraffe without a GBWT) at
    // startup, not on the first batch: the mapper ctor runs the check.
    pipeline::Seq2GraphMapper probe(*context_, mapperConfig_);
    (void)probe;
}

Server::~Server() { joinReloader(); }

void
Server::joinReloader()
{
    std::lock_guard<std::mutex> guard(reloaderLock_);
    if (reloader_.joinable())
        reloader_.join();
}

Server::ServingIndex
Server::currentIndex() const
{
    std::lock_guard<std::mutex> guard(indexLock_);
    return {context_, mapperConfig_};
}

void
Server::markReady()
{
    {
        std::lock_guard<std::mutex> guard(readyLock_);
        ready_ = true;
    }
    readyCv_.notify_all();
    if (config_.onReady) {
        config_.onReady();
    }
}

bool
Server::waitReady(uint64_t timeout_ms) const
{
    std::unique_lock<std::mutex> guard(readyLock_);
    return readyCv_.wait_for(guard, std::chrono::milliseconds(timeout_ms),
                             [&] { return ready_; });
}

Server::Totals
Server::totals() const
{
    Totals t;
    t.connections = connectionCount_.load(std::memory_order_relaxed);
    t.requests = requestCount_.load(std::memory_order_relaxed);
    t.responses = responseCount_.load(std::memory_order_relaxed);
    t.shed = shedCount_.load(std::memory_order_relaxed);
    t.batches = batchCount_.load(std::memory_order_relaxed);
    t.reads = readCount_.load(std::memory_order_relaxed);
    t.badFrames = badFrameCount_.load(std::memory_order_relaxed);
    t.deadlineExceeded =
        deadlineExceededCount_.load(std::memory_order_relaxed);
    t.reloadsOk = reloadOkCount_.load(std::memory_order_relaxed);
    t.reloadsFailed = reloadFailedCount_.load(std::memory_order_relaxed);
    t.watchdogStalls =
        watchdogStallCount_.load(std::memory_order_relaxed);
    return t;
}

void
Server::run()
{
    // A peer that hangs up mid-response must surface as EPIPE on the
    // write (one dropped connection, §6), not as SIGPIPE process
    // death.
    std::signal(SIGPIPE, SIG_IGN);
    monitorStop_.store(false, std::memory_order_release);
    std::thread monitor([this] { monitorLoop(); });
    // The transport loops fatal() on environment errors and stdio
    // framing violations; the monitor must be joined on every path.
    try {
        if (config_.stdio)
            runStdio();
        else
            runSocket();
    } catch (...) {
        monitorStop_.store(true, std::memory_order_release);
        monitor.join();
        joinReloader();
        throw;
    }
    monitorStop_.store(true, std::memory_order_release);
    monitor.join();
    joinReloader();
}

void
Server::runStdio()
{
    auto connection = std::make_shared<Connection>();
    connection->readFd = STDIN_FILENO;
    connection->writeFd = STDOUT_FILENO;
    connection->ownsFds = false;
    connectionCount_.fetch_add(1, std::memory_order_relaxed);
    obsConnections.add();

    std::thread batcher([this] { batcherLoop(); });
    markReady();

    // One implicit connection on the caller's thread; EOF is the
    // shutdown signal. Admitted requests are still answered before
    // run() returns — close() stops admission, not delivery.
    readerLoop(connection);
    queue_.close();
    batcher.join();

    if (!stdioError_.empty()) {
        // A framing violation with stdio transport has no connection
        // to sacrifice: the sole peer's stream is unrecoverable, so
        // the error contract's fatal path applies.
        core::fatal(stdioError_);
    }
}

void
Server::runSocket()
{
    const std::string &path = config_.socketPath;
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(address.sun_path)) {
        core::fatal("serve: socket path '", path, "' must be 1-",
                    sizeof(address.sun_path) - 1, " characters");
    }
    std::memcpy(address.sun_path, path.c_str(), path.size() + 1);

    const int listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0)
        core::fatal("serve: cannot create socket: ", std::strerror(errno));
    if (::bind(listenFd, reinterpret_cast<const sockaddr *>(&address),
               sizeof(address)) < 0) {
        const int bindErrno = errno;
        ::close(listenFd);
        if (bindErrno == EADDRINUSE) {
            core::fatal("serve: socket path '", path,
                        "' already exists (another daemon, or a stale "
                        "socket file to remove)");
        }
        core::fatal("serve: cannot bind '", path,
                    "': ", std::strerror(bindErrno));
    }
    if (::listen(listenFd, 64) < 0) {
        const int listenErrno = errno;
        ::close(listenFd);
        ::unlink(path.c_str());
        core::fatal("serve: cannot listen on '", path,
                    "': ", std::strerror(listenErrno));
    }

    std::thread batcher([this] { batcherLoop(); });
    markReady();

    while (!stop_.load(std::memory_order_acquire)) {
        // Reap readers whose connections already ended, so a
        // long-lived daemon's thread table tracks live connections,
        // not lifetime connections.
        {
            std::lock_guard<std::mutex> guard(connectionsLock_);
            for (size_t slot : finishedReaders_) {
                if (readers_[slot].joinable())
                    readers_[slot].join();
            }
            finishedReaders_.clear();
        }

        pollfd waiter{listenFd, POLLIN, 0};
        const int readyCount = ::poll(&waiter, 1, kPollMillis);
        if (readyCount <= 0) {
            if (readyCount < 0 && errno != EINTR && errno != EAGAIN) {
                core::warn("serve: poll failed: ", std::strerror(errno),
                           "; continuing");
            }
            continue;
        }

        const int clientFd = ::accept(listenFd, nullptr, nullptr);
        const bool injected = faultAccept.fire();
        if (clientFd < 0 || injected) {
            // §6: accept failure costs the pending connection only.
            if (clientFd >= 0)
                ::close(clientFd);
            if (injected || (errno != EINTR && errno != EAGAIN &&
                             errno != ECONNABORTED)) {
                core::warn("serve: accept failed: ",
                           injected ? "injected fault (serve.accept)"
                                    : std::strerror(errno),
                           "; connection dropped, still serving");
            }
            continue;
        }

        auto connection = std::make_shared<Connection>();
        connection->readFd = clientFd;
        connection->writeFd = clientFd;
        connection->ownsFds = true;
        connectionCount_.fetch_add(1, std::memory_order_relaxed);
        obsConnections.add();

        std::lock_guard<std::mutex> guard(connectionsLock_);
        const size_t slot = readers_.size();
        connections_.push_back(connection);
        readers_.emplace_back([this, connection, slot] {
            readerLoop(connection);
            std::lock_guard<std::mutex> reap(connectionsLock_);
            finishedReaders_.push_back(slot);
        });
    }

    // Shutdown: stop the intake edge first (listener, then readers),
    // then let the batcher drain what was already admitted.
    ::close(listenFd);
    ::unlink(path.c_str());
    {
        std::lock_guard<std::mutex> guard(connectionsLock_);
        for (const std::weak_ptr<Connection> &weak : connections_) {
            if (auto connection = weak.lock())
                connection->deactivate();
        }
    }
    for (std::thread &reader : readers_) {
        if (reader.joinable())
            reader.join();
    }
    queue_.close();
    batcher.join();
}

void
Server::readerLoop(const std::shared_ptr<Connection> &connection)
{
    FrameDecoder decoder;
    std::string payload;
    char buffer[64 * 1024];
    bool broken = false;

    while (!stop_.load(std::memory_order_acquire) &&
           connection->alive.load(std::memory_order_acquire)) {
        pollfd waiter{connection->readFd, POLLIN, 0};
        const int readyCount = ::poll(&waiter, 1, kPollMillis);
        if (readyCount < 0) {
            if (errno == EINTR)
                continue;
            broken = true;
            break;
        }
        if (readyCount == 0)
            continue; // poll timeout: re-check stop/alive

        const ssize_t got =
            ::read(connection->readFd, buffer, sizeof(buffer));
        if (got < 0 && errno == EINTR)
            continue;
        if (got == 0) {
            // Clean EOF ends the *read* side only: requests already
            // admitted still get their responses written (the stdio
            // client sends-all-then-EOF; a socket peer may half-close
            // the same way). A peer that is fully gone surfaces as
            // EPIPE on the write, which drops the connection then.
            break;
        }
        if (got < 0 || faultRead.fire()) {
            core::warn("serve: read failed: ",
                       got < 0 ? std::strerror(errno)
                               : "injected fault (serve.read)",
                       "; connection dropped, still serving");
            broken = true;
            break;
        }

        decoder.feed(buffer, static_cast<size_t>(got));
        while (decoder.next(payload))
            handlePayload(connection, payload);
        if (decoder.error()) {
            badFrameCount_.fetch_add(1, std::memory_order_relaxed);
            obsBadFrames.add();
            if (config_.stdio) {
                stdioError_ =
                    "serve: malformed frame on stdin: " +
                    decoder.errorMessage();
            } else {
                core::warn("serve: malformed frame: ",
                           decoder.errorMessage(),
                           "; connection dropped, still serving");
            }
            broken = true;
            break;
        }
    }
    // A clean EOF leaves the write side open for queued responses;
    // every failure path severs the connection entirely.
    if (broken)
        connection->deactivate();
}

void
Server::handlePayload(const std::shared_ptr<Connection> &connection,
                      const std::string &payload)
{
    Request request;
    std::string error;
    if (!decodeRequest(payload, request, error)) {
        badFrameCount_.fetch_add(1, std::memory_order_relaxed);
        obsBadFrames.add();
        if (config_.stdio && stdioError_.empty())
            stdioError_ = "serve: malformed request on stdin: " + error;
        else if (!config_.stdio)
            core::warn("serve: malformed request: ", error,
                       "; connection dropped, still serving");
        connection->deactivate();
        return;
    }

    requestCount_.fetch_add(1, std::memory_order_relaxed);
    obsRequests.add();

    // Control frames bypass admission entirely: a health probe or an
    // operator's reload must not be sheddable behind mapping load.
    switch (request.type) {
    case MsgType::kPing:
        respond(connection, request.id, Status::kOk, "pong");
        return;
    case MsgType::kStatus:
        respond(connection, request.id, Status::kOk,
                obs::Report::collect().toJson());
        return;
    case MsgType::kReload:
        startReload(connection, request.id);
        return;
    default:
        break; // kMapRequest falls through to the mapping path
    }

    // A well-formed frame carrying malformed FASTQ is a *request*
    // error: one ERROR response, connection unharmed.
    Pending pending;
    pending.id = request.id;
    try {
        std::istringstream input(request.fastq);
        pending.reads = seq::readFastq(input);
    } catch (const core::FatalError &parseError) {
        obsBadRequests.add();
        respond(connection, request.id, Status::kError, parseError.what());
        return;
    }
    pending.client = connection;
    pending.enqueueNanos = core::monotonicNanos();
    if (request.hasDeadline) {
        // The budget is relative to decode time; saturate rather than
        // wrap on absurd values.
        const uint64_t budgetNanos =
            request.deadlineUs < UINT64_MAX / 1000
                ? request.deadlineUs * 1000
                : UINT64_MAX - pending.enqueueNanos;
        pending.deadlineNanos = pending.enqueueNanos + budgetNanos;
        // A zero (or already-lapsed) budget sheds at admission: the
        // client asked for work it no longer wants.
        if (pending.enqueueNanos >= pending.deadlineNanos) {
            deadlineExceededCount_.fetch_add(1,
                                             std::memory_order_relaxed);
            obsDeadlineExceeded.add();
            respond(connection, request.id, Status::kDeadlineExceeded,
                    "deadline expired at admission");
            return;
        }
    }

    switch (queue_.push(std::move(pending))) {
    case AdmissionQueue::Push::kAccepted:
        break;
    case AdmissionQueue::Push::kShed:
        shedCount_.fetch_add(1, std::memory_order_relaxed);
        respond(connection, request.id, Status::kOverloaded,
                "request queue full");
        break;
    case AdmissionQueue::Push::kClosed:
        // Shutting down; the client sees the connection close.
        break;
    }
}

void
Server::batcherLoop()
{
    Batcher batcher(queue_, config_.maxBatchReads, config_.maxWaitUs);
    std::vector<Pending> batch;
    std::vector<seq::Sequence> reads;
    std::vector<pipeline::ReadMapping> mappings;

    while (batcher.nextBatch(batch)) {
        // Shed requests whose deadline lapsed in the queue *before*
        // composing the batch: a request nobody is waiting for must
        // never consume mapBatch() work.
        const uint64_t shedNow = core::monotonicNanos();
        size_t kept = 0;
        for (size_t i = 0; i < batch.size(); ++i) {
            Pending &item = batch[i];
            if (item.deadlineNanos != 0 &&
                shedNow >= item.deadlineNanos) {
                deadlineExceededCount_.fetch_add(
                    1, std::memory_order_relaxed);
                obsDeadlineExceeded.add();
                respond(std::static_pointer_cast<Connection>(item.client),
                        item.id, Status::kDeadlineExceeded,
                        "deadline expired while queued");
                obsRequestNanos.record(shedNow - item.enqueueNanos);
                continue;
            }
            if (kept != i)
                batch[kept] = std::move(item);
            ++kept;
        }
        batch.resize(kept);
        if (batch.empty())
            continue;

        // The index is picked up at composition time: a hot reload
        // swaps it between batches, never under a running one.
        const ServingIndex serving = currentIndex();

        obs::Span span("serve.batch");
        batchCount_.fetch_add(1, std::memory_order_relaxed);

        reads.clear();
        for (const Pending &item : batch) {
            reads.insert(reads.end(), item.reads.begin(),
                         item.reads.end());
        }
        readCount_.fetch_add(reads.size(), std::memory_order_relaxed);

        batchStartNanos_.store(core::monotonicNanos(),
                               std::memory_order_release);
        if (faultStall.fire()) {
            const uint64_t holdMs = config_.stallBudgetMs > 0
                                        ? config_.stallBudgetMs * 2
                                        : 5000;
            core::warn("serve: injected stall (serve.stall): holding "
                       "the batch ",
                       holdMs, " ms");
            std::this_thread::sleep_for(
                std::chrono::milliseconds(holdMs));
        }

        bool mapFailed = false;
        std::string mapError;
        try {
            pipeline::mapBatch(*serving.context, serving.config, reads,
                               mappings);
        } catch (const std::exception &batchError) {
            // §6 request-level failure: every request in the batch
            // gets an ERROR response; the daemon keeps serving.
            mapFailed = true;
            mapError = batchError.what();
            obsErrors.add(batch.size());
            core::warn("serve: batch of ", batch.size(),
                       " request(s) failed: ", mapError,
                       "; still serving");
        }
        batchStartNanos_.store(0, std::memory_order_release);

        size_t offset = 0;
        for (const Pending &item : batch) {
            obs::Span requestSpan("serve.request");
            auto connection =
                std::static_pointer_cast<Connection>(item.client);
            if (mapFailed) {
                respond(connection, item.id, Status::kError, mapError);
            } else {
                std::span<const seq::Sequence> itemReads(
                    item.reads.data(), item.reads.size());
                std::span<const pipeline::ReadMapping> itemMappings(
                    mappings.data() + offset, item.reads.size());
                respond(connection, item.id, Status::kOk,
                        formatMappings(itemReads, itemMappings));
            }
            offset += item.reads.size();
            obsRequestNanos.record(core::monotonicNanos() -
                                   item.enqueueNanos);
        }
    }
}

void
Server::respond(const std::shared_ptr<Connection> &connection, uint64_t id,
                Status status, std::string body)
{
    Response response;
    response.id = id;
    response.status = status;
    response.body = std::move(body);
    if (connection && writeFrame(*connection, encodeResponse(response))) {
        responseCount_.fetch_add(1, std::memory_order_relaxed);
        obsResponses.add();
    }
}

void
Server::monitorLoop()
{
    const uint64_t budgetNanos = config_.stallBudgetMs * 1000000ull;
    // A stall already acted upon must not re-trigger every tick while
    // a test's onStall hook lets the batch finish.
    uint64_t handledStart = 0;
    while (!monitorStop_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));

        if (reloadRequested_.exchange(false, std::memory_order_acq_rel))
            startReload(nullptr, 0);

        if (budgetNanos == 0)
            continue;
        const uint64_t start =
            batchStartNanos_.load(std::memory_order_acquire);
        if (start == 0 || start == handledStart)
            continue;
        const uint64_t now = core::monotonicNanos();
        if (now - start <= budgetNanos)
            continue;
        handledStart = start;
        watchdogStallCount_.fetch_add(1, std::memory_order_relaxed);
        obsWatchdogStalls.add();
        const std::string dump = stallDump(now - start);
        if (config_.onStall) {
            config_.onStall(dump);
        } else {
            // Crash-only: a wedged daemon dies loudly with a clean
            // non-zero exit instead of hanging every client. _Exit,
            // not exit — running static destructors under a wedged
            // batch thread is how a diagnostic exit turns into a
            // second hang.
            std::fputs(dump.c_str(), stderr);
            std::fputc('\n', stderr);
            std::fflush(stderr);
            std::_Exit(1);
        }
    }
}

std::string
Server::stallDump(uint64_t stalledNanos) const
{
    const uint64_t front = queue_.frontEnqueueNanos();
    const uint64_t now = core::monotonicNanos();
    std::ostringstream out;
    out << "serve: watchdog: batch stalled "
        << stalledNanos / 1000000ull << " ms (budget "
        << config_.stallBudgetMs << " ms); open connections "
        << liveConnections() << "; queue depth " << queue_.depth()
        << "; oldest admission age "
        << (front == 0 ? 0 : (now - front) / 1000000ull) << " ms";
    return out.str();
}

size_t
Server::liveConnections() const
{
    std::lock_guard<std::mutex> guard(connectionsLock_);
    size_t live = 0;
    for (const std::weak_ptr<Connection> &weak : connections_) {
        if (auto connection = weak.lock()) {
            if (connection->alive.load(std::memory_order_acquire))
                ++live;
        }
    }
    return live;
}

void
Server::startReload(std::shared_ptr<Connection> connection, uint64_t id)
{
    if (reloadInFlight_.exchange(true, std::memory_order_acq_rel)) {
        // One reload at a time; a concurrent request is refused, not
        // queued — the operator can simply retry.
        respond(connection, id, Status::kError,
                "reload already in progress");
        return;
    }
    std::lock_guard<std::mutex> guard(reloaderLock_);
    if (reloader_.joinable())
        reloader_.join();
    reloader_ = std::thread(
        [this, connection = std::move(connection), id]() mutable {
            runReload(std::move(connection), id);
        });
}

void
Server::runReload(std::shared_ptr<Connection> connection, uint64_t id)
{
    obs::Span span("serve.reload");
    try {
        if (config_.indexPath.empty() && config_.shardsPath.empty()) {
            core::fatal("no .pgbi artifact or .pgbs shard set to "
                        "reload (daemon was started without "
                        "--index/--shards)");
        }
        if (faultReload.fire())
            core::fatal("injected fault (serve.reload)");

        // Load and fully validate off-thread: the store's own
        // checksummed load, then geometry/profile validation via a
        // probe mapper — exactly the constructor's startup checks.
        const std::string &source_path = config_.shardsPath.empty()
            ? config_.indexPath : config_.shardsPath;
        pipeline::MappingContext::Builder builder;
        if (config_.shardsPath.empty()) {
            builder.fromArtifact(config_.indexPath);
        } else {
            builder.fromManifest(config_.shardsPath)
                .shardCacheMb(config_.shardCacheMb);
        }
        auto fresh = builder.seeder(config_.seeder).build();
        pipeline::MapperConfig freshConfig =
            pipeline::MapperConfig::forTool(config_.profile);
        freshConfig.k = fresh->k();
        freshConfig.w = fresh->w();
        {
            std::lock_guard<std::mutex> guard(indexLock_);
            freshConfig.threads = mapperConfig_.threads;
        }
        pipeline::Seq2GraphMapper probe(*fresh, freshConfig);
        (void)probe;

        {
            std::lock_guard<std::mutex> guard(indexLock_);
            context_ = std::move(fresh);
            mapperConfig_ = freshConfig;
        }
        reloadOkCount_.fetch_add(1, std::memory_order_relaxed);
        obsReloadsOk.add();
        core::inform("serve: reloaded index '", source_path,
                     "' (k=", freshConfig.k, ", w=", freshConfig.w,
                     "); in-flight batches finish on the old index");
        respond(connection, id, Status::kOk,
                "reloaded " + source_path);
    } catch (const std::exception &loadError) {
        reloadFailedCount_.fetch_add(1, std::memory_order_relaxed);
        obsReloadsFailed.add();
        core::warn("serve: reload failed: ", loadError.what(),
                   "; still serving the previous index");
        respond(connection, id, Status::kError, loadError.what());
    }
    reloadInFlight_.store(false, std::memory_order_release);
}

bool
Server::writeFrame(Connection &connection, const std::string &bytes)
{
    std::lock_guard<std::mutex> guard(connection.writeLock);
    if (!connection.alive.load(std::memory_order_acquire))
        return false;
    if (faultWrite.fire()) {
        core::warn("serve: write failed: injected fault (serve.write)",
                   "; connection dropped, still serving");
        connection.deactivate();
        return false;
    }
    size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t wrote = ::write(connection.writeFd,
                                      bytes.data() + sent,
                                      bytes.size() - sent);
        if (wrote < 0 && errno == EINTR)
            continue;
        if (wrote <= 0) {
            // §6: a peer that stopped reading (EPIPE et al.) costs
            // exactly this connection.
            core::warn("serve: write failed: ", std::strerror(errno),
                       "; connection dropped, still serving");
            connection.deactivate();
            return false;
        }
        sent += static_cast<size_t>(wrote);
    }
    return true;
}

} // namespace pgb::serve
