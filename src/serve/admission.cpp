#include "serve/admission.hpp"

#include "obs/metrics.hpp"

namespace pgb::serve {

namespace {

// Queue telemetry: the depth gauge is the live backpressure signal;
// the shed counter is the load-shedding audit trail.
obs::Gauge obsQueueDepth("serve.queue_depth");
obs::Counter obsAdmitted("serve.admitted");
obs::Counter obsShed("serve.shed");

} // namespace

AdmissionQueue::AdmissionQueue(size_t depth)
    : depthBound_(depth == 0 ? 1 : depth)
{
}

AdmissionQueue::~AdmissionQueue()
{
    // The gauge must not leak this queue's residue into the next one.
    std::lock_guard<std::mutex> guard(lock_);
    obsQueueDepth.sub(static_cast<int64_t>(items_.size()));
}

AdmissionQueue::Push
AdmissionQueue::push(Pending item)
{
    {
        std::lock_guard<std::mutex> guard(lock_);
        if (closed_)
            return Push::kClosed;
        if (items_.size() >= depthBound_) {
            obsShed.add();
            return Push::kShed;
        }
        weight_ += item.reads.size();
        items_.push_back(std::move(item));
        obsAdmitted.add();
        obsQueueDepth.add();
    }
    ready_.notify_all();
    return Push::kAccepted;
}

bool
AdmissionQueue::waitNonEmpty()
{
    std::unique_lock<std::mutex> guard(lock_);
    ready_.wait(guard, [&] { return closed_ || !items_.empty(); });
    return !items_.empty();
}

void
AdmissionQueue::waitUntil(
    const std::function<bool(size_t depth, size_t weight)> &done,
    std::chrono::steady_clock::time_point deadline)
{
    std::unique_lock<std::mutex> guard(lock_);
    ready_.wait_until(guard, deadline, [&] {
        return closed_ || done(items_.size(), weight_);
    });
}

std::vector<Pending>
AdmissionQueue::drain(size_t maxWeight)
{
    std::vector<Pending> out;
    std::lock_guard<std::mutex> guard(lock_);
    size_t taken = 0;
    while (!items_.empty()) {
        const size_t next = items_.front().reads.size();
        if (!out.empty() && taken + next > maxWeight)
            break;
        taken += next;
        weight_ -= next;
        out.push_back(std::move(items_.front()));
        items_.pop_front();
        obsQueueDepth.sub();
    }
    return out;
}

uint64_t
AdmissionQueue::frontEnqueueNanos() const
{
    std::lock_guard<std::mutex> guard(lock_);
    return items_.empty() ? 0 : items_.front().enqueueNanos;
}

void
AdmissionQueue::close()
{
    {
        std::lock_guard<std::mutex> guard(lock_);
        closed_ = true;
    }
    ready_.notify_all();
}

bool
AdmissionQueue::closed() const
{
    std::lock_guard<std::mutex> guard(lock_);
    return closed_;
}

size_t
AdmissionQueue::depth() const
{
    std::lock_guard<std::mutex> guard(lock_);
    return items_.size();
}

size_t
AdmissionQueue::weight() const
{
    std::lock_guard<std::mutex> guard(lock_);
    return weight_;
}

} // namespace pgb::serve
