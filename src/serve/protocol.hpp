/**
 * @file
 * The `pgb serve` wire protocol: length-prefixed binary frames.
 *
 * Both directions carry the same framing over a byte stream (a
 * Unix-domain socket, or stdin/stdout in `--stdio` mode):
 *
 *     uint32-LE payloadLength | payload bytes
 *
 * A request payload is
 *
 *     uint64-LE requestId | uint8 type | uint8 hasDeadline |
 *     uint64-LE deadlineUs | body
 *
 * where type is kMapRequest (body = FASTQ text) or a bodyless control
 * frame: kPing (liveness), kStatus (obs metrics snapshot), kReload
 * (hot index reload). hasDeadline != 0 gives the request a relative
 * budget of deadlineUs microseconds, measured from the moment the
 * daemon decodes the frame; a request whose budget lapses before its
 * batch is assembled is shed with DEADLINE_EXCEEDED instead of being
 * mapped. hasDeadline == 0 means no deadline (deadlineUs ignored).
 *
 * A response payload is
 *
 *     uint64-LE requestId | uint8 type=kMapResponse | uint8 status |
 *     body text
 *
 * where an OK body holds one TSV mapping record per read, in request
 * order, in exactly the golden-digest schema
 * (`name\tmapped\tnode\tscore\treverse\n`) — so served output can be
 * compared byte-for-byte against a direct mapBatch() run. An
 * OVERLOADED response (admission control shed the request), an
 * ERROR response (e.g. malformed FASTQ inside a well-formed frame),
 * and a DEADLINE_EXCEEDED response (the deadline lapsed before
 * mapping) carry a diagnostic message as the body. Control frames are
 * answered with the same response framing: PING → OK "pong", STATUS →
 * OK with the metrics JSON as the body, RELOAD → OK/ERROR once the
 * reload completes.
 *
 * FrameDecoder is an incremental parser fed arbitrary byte chunks —
 * torn and partial reads are the normal case on a socket — and fails
 * closed: a frame that declares a length over kMaxFrameBytes or under
 * the smallest legal payload poisons the decoder (error()), because
 * after a framing violation the stream position can never be trusted
 * again. The server drops that one connection; the process keeps
 * serving.
 */

#ifndef PGB_SERVE_PROTOCOL_HPP
#define PGB_SERVE_PROTOCOL_HPP

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "pipeline/mapper.hpp"
#include "seq/sequence.hpp"

namespace pgb::serve {

/** Refuse frames larger than this (a garbage length must not drive
 *  allocation). Generous: ~4M of 150 bp FASTQ records per request. */
constexpr uint32_t kMaxFrameBytes = 64u << 20;

/** Frame payload kinds. */
enum class MsgType : uint8_t
{
    kMapRequest = 1,
    kMapResponse = 2,
    kPing = 3,   ///< liveness probe; answered OK "pong"
    kStatus = 4, ///< answered OK with an obs metrics snapshot body
    kReload = 5, ///< hot index reload; answered once the load settles
};

/** Response disposition. */
enum class Status : uint8_t
{
    kOk = 0,
    kOverloaded = 1,       ///< admission control shed the request
    kError = 2,            ///< request-level failure (e.g. bad FASTQ)
    kDeadlineExceeded = 3, ///< the deadline lapsed before mapping
};

/** Printable status name ("OK", "OVERLOADED", ...). */
const char *statusName(Status status);

/** A decoded request (mapping or control). */
struct Request
{
    uint64_t id = 0;
    MsgType type = MsgType::kMapRequest;
    bool hasDeadline = false;
    uint64_t deadlineUs = 0; ///< relative budget; meaningful only when
                             ///< hasDeadline is set (0 = already due)
    std::string fastq;       ///< FASTQ text; empty for control frames
};

/** A decoded (or to-be-encoded) response. */
struct Response
{
    uint64_t id = 0;
    Status status = Status::kOk;
    std::string body; ///< TSV mapping records, or a diagnostic
};

/** Encode a complete request frame (length prefix included). */
std::string encodeRequest(const Request &request);

/** Encode a bodyless control request frame (kPing/kStatus/kReload). */
std::string encodeControl(MsgType type, uint64_t id);

/** Encode a complete response frame (length prefix included). */
std::string encodeResponse(const Response &response);

/**
 * Incremental frame extractor over an arbitrary chunking of the byte
 * stream. feed() appends received bytes; next() yields complete
 * payloads in order. A framing violation (impossible declared length)
 * sets error() permanently — the caller must drop the stream.
 */
class FrameDecoder
{
  public:
    /** Append @p size received bytes. */
    void feed(const char *data, size_t size);

    /**
     * Extract the next complete frame's payload into @p payload.
     * @return false when more bytes are needed (or after error()).
     */
    bool next(std::string &payload);

    bool error() const { return !error_.empty(); }
    const std::string &errorMessage() const { return error_; }

    /** Bytes buffered but not yet consumed by next(). */
    size_t buffered() const { return buffer_.size() - cursor_; }

  private:
    std::string buffer_;
    size_t cursor_ = 0;
    std::string error_;
};

/**
 * Decode a request payload. @return false (with @p error set) on a
 * malformed payload; the connection should be dropped.
 */
bool decodeRequest(std::string_view payload, Request &out,
                   std::string &error);

/** Decode a response payload (the client side of decodeRequest). */
bool decodeResponse(std::string_view payload, Response &out,
                    std::string &error);

/**
 * The OK response body: one TSV record per read, request order —
 * byte-identical to the golden-digest mapping records.
 * reads.size() must equal mappings.size().
 */
std::string formatMappings(std::span<const seq::Sequence> reads,
                           std::span<const pipeline::ReadMapping>
                               mappings);

} // namespace pgb::serve

#endif // PGB_SERVE_PROTOCOL_HPP
