#include "serve/protocol.hpp"

#include <cstring>
#include <sstream>

namespace pgb::serve {

namespace {

/** Fixed payload bytes before the FASTQ text:
 *  id + type + hasDeadline + deadlineUs. */
constexpr size_t kRequestHeaderBytes = 8 + 1 + 1 + 8;
/** Fixed payload bytes before the body: id + type + status. */
constexpr size_t kResponseHeaderBytes = 8 + 1 + 1;
/** The smallest payload legal in either direction (the response
 *  header) — the framing floor; the decoder is direction-agnostic. */
constexpr size_t kMinPayloadBytes = kResponseHeaderBytes;

void
putU32(std::string &out, uint32_t value)
{
    for (int shift = 0; shift < 32; shift += 8)
        out.push_back(static_cast<char>((value >> shift) & 0xff));
}

void
putU64(std::string &out, uint64_t value)
{
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<char>((value >> shift) & 0xff));
}

uint32_t
getU32(const char *data)
{
    uint32_t value = 0;
    for (int b = 3; b >= 0; --b)
        value = (value << 8) | static_cast<uint8_t>(data[b]);
    return value;
}

uint64_t
getU64(const char *data)
{
    uint64_t value = 0;
    for (int b = 7; b >= 0; --b)
        value = (value << 8) | static_cast<uint8_t>(data[b]);
    return value;
}

std::string
frame(const std::string &payload)
{
    std::string framed;
    framed.reserve(4 + payload.size());
    putU32(framed, static_cast<uint32_t>(payload.size()));
    framed += payload;
    return framed;
}

} // namespace

const char *
statusName(Status status)
{
    switch (status) {
    case Status::kOk:
        return "OK";
    case Status::kOverloaded:
        return "OVERLOADED";
    case Status::kError:
        return "ERROR";
    case Status::kDeadlineExceeded:
        return "DEADLINE_EXCEEDED";
    }
    return "UNKNOWN";
}

std::string
encodeRequest(const Request &request)
{
    std::string payload;
    payload.reserve(kRequestHeaderBytes + request.fastq.size());
    putU64(payload, request.id);
    payload.push_back(static_cast<char>(request.type));
    payload.push_back(request.hasDeadline ? '\1' : '\0');
    putU64(payload, request.hasDeadline ? request.deadlineUs : 0);
    payload += request.fastq;
    return frame(payload);
}

std::string
encodeControl(MsgType type, uint64_t id)
{
    Request request;
    request.id = id;
    request.type = type;
    return encodeRequest(request);
}

std::string
encodeResponse(const Response &response)
{
    std::string payload;
    payload.reserve(kResponseHeaderBytes + response.body.size());
    putU64(payload, response.id);
    payload.push_back(static_cast<char>(MsgType::kMapResponse));
    payload.push_back(static_cast<char>(response.status));
    payload += response.body;
    return frame(payload);
}

void
FrameDecoder::feed(const char *data, size_t size)
{
    if (error())
        return;
    // Compact once the consumed prefix dominates, so a long-lived
    // connection does not grow its buffer without bound.
    if (cursor_ > 0 && cursor_ >= buffer_.size() / 2) {
        buffer_.erase(0, cursor_);
        cursor_ = 0;
    }
    buffer_.append(data, size);
}

bool
FrameDecoder::next(std::string &payload)
{
    if (error())
        return false;
    if (buffer_.size() - cursor_ < 4)
        return false;
    const uint32_t length = getU32(buffer_.data() + cursor_);
    if (length > kMaxFrameBytes) {
        std::ostringstream what;
        what << "frame declares " << length << " bytes (cap "
             << kMaxFrameBytes << ")";
        error_ = what.str();
        return false;
    }
    if (length < kMinPayloadBytes) {
        std::ostringstream what;
        what << "frame declares " << length
             << " bytes, below the fixed header";
        error_ = what.str();
        return false;
    }
    if (buffer_.size() - cursor_ < 4 + static_cast<size_t>(length))
        return false;
    payload.assign(buffer_, cursor_ + 4, length);
    cursor_ += 4 + static_cast<size_t>(length);
    return true;
}

bool
decodeRequest(std::string_view payload, Request &out,
              std::string &error)
{
    if (payload.size() < kRequestHeaderBytes) {
        error = "request payload shorter than its fixed header";
        return false;
    }
    const auto type = static_cast<uint8_t>(payload[8]);
    const bool known =
        type == static_cast<uint8_t>(MsgType::kMapRequest) ||
        type == static_cast<uint8_t>(MsgType::kPing) ||
        type == static_cast<uint8_t>(MsgType::kStatus) ||
        type == static_cast<uint8_t>(MsgType::kReload);
    if (!known) {
        error = "unexpected message type (want a request frame)";
        return false;
    }
    out.id = getU64(payload.data());
    out.type = static_cast<MsgType>(type);
    out.hasDeadline = payload[9] != '\0';
    out.deadlineUs = getU64(payload.data() + 10);
    out.fastq.assign(payload.substr(kRequestHeaderBytes));
    return true;
}

bool
decodeResponse(std::string_view payload, Response &out,
               std::string &error)
{
    if (payload.size() < kResponseHeaderBytes) {
        error = "response payload shorter than its fixed header";
        return false;
    }
    if (payload[8] != static_cast<char>(MsgType::kMapResponse)) {
        error = "unexpected message type (want MapResponse)";
        return false;
    }
    const auto status = static_cast<uint8_t>(payload[9]);
    if (status > static_cast<uint8_t>(Status::kDeadlineExceeded)) {
        error = "unknown response status";
        return false;
    }
    out.id = getU64(payload.data());
    out.status = static_cast<Status>(status);
    out.body.assign(payload.substr(kResponseHeaderBytes));
    return true;
}

std::string
formatMappings(std::span<const seq::Sequence> reads,
               std::span<const pipeline::ReadMapping> mappings)
{
    std::ostringstream out;
    for (size_t i = 0; i < reads.size() && i < mappings.size(); ++i) {
        const pipeline::ReadMapping &mapping = mappings[i];
        out << reads[i].name() << '\t' << mapping.mapped << '\t'
            << mapping.node << '\t' << mapping.score << '\t'
            << mapping.reverse << '\n';
    }
    return out.str();
}

} // namespace pgb::serve
