#include "serve/loadgen.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <mutex>
#include <optional>
#include <queue>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "core/io.hpp"
#include "core/logging.hpp"
#include "core/rng.hpp"
#include "core/timer.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"

namespace pgb::serve {

namespace {

/** Client-observed retries, exported so a `--metrics` loadgen run
 *  carries its backoff behavior into the snapshot. */
obs::Counter obsRetries("serve.retries_observed");

/** One pre-built request: its encoded frame and, for the open loop,
 *  its scheduled arrival offset from the run start. */
struct RequestSpec
{
    uint64_t id = 0;
    std::string frame;
    uint64_t scheduledOffsetNanos = 0;
};

/** Render @p reads as the FASTQ payload of one request. */
std::string
formatFastq(const std::vector<seq::Sequence> &reads, size_t first,
            size_t count)
{
    std::ostringstream out;
    for (size_t i = 0; i < count; ++i) {
        const seq::Sequence &read = reads[(first + i) % reads.size()];
        const std::string bases = read.toString();
        out << '@' << read.name() << '\n'
            << bases << "\n+\n"
            << std::string(bases.size(), 'I') << '\n';
    }
    return out.str();
}

int
connectTo(const std::string &path)
{
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(address.sun_path)) {
        core::fatal("loadgen: socket path '", path, "' must be 1-",
                    sizeof(address.sun_path) - 1, " characters");
    }
    std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        core::fatal("loadgen: cannot create socket: ",
                    std::strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&address),
                  sizeof(address)) < 0) {
        const int connectErrno = errno;
        ::close(fd);
        core::fatal("loadgen: cannot connect to '", path,
                    "': ", std::strerror(connectErrno),
                    " (is the daemon running?)");
    }
    return fd;
}

/** Full write with EINTR handling. @return false on error. */
bool
writeAll(int fd, const std::string &bytes)
{
    size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t wrote =
            ::write(fd, bytes.data() + sent, bytes.size() - sent);
        if (wrote < 0 && errno == EINTR)
            continue;
        if (wrote <= 0)
            return false;
        sent += static_cast<size_t>(wrote);
    }
    return true;
}

void
sleepUntilNanos(uint64_t targetNanos)
{
    for (;;) {
        const uint64_t now = core::monotonicNanos();
        if (now >= targetNanos)
            return;
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(targetNanos - now));
    }
}

/**
 * Exponential backoff with jitter for attempt N (1-based): base * 2^N
 * capped at 50 ms, then jittered into its top half so synchronized
 * retries from many connections decorrelate.
 */
uint64_t
backoffNanos(uint64_t attempt, uint64_t baseUs,
             core::Xoshiro256StarStar &rng)
{
    const uint64_t shift = attempt < 10 ? attempt - 1 : 9;
    double capUs =
        static_cast<double>(baseUs) *
        static_cast<double>(static_cast<uint64_t>(1) << shift);
    capUs = std::min(capUs, 50000.0);
    const double delayUs = capUs * (0.5 + 0.5 * rng.uniform());
    return static_cast<uint64_t>(delayUs * 1000.0);
}

/** Shared measurement state, written by connection workers. */
struct RunState
{
    uint64_t startNanos = 0;
    bool dump = false;
    std::vector<uint64_t> scheduledNanos; ///< absolute, by request id
    /** OVERLOADED resends so far, by request id. Each id is owned by
     *  exactly one connection's response path — no lock needed. */
    std::vector<uint32_t> attempts;

    std::mutex lock;
    std::vector<uint64_t> latencies; ///< OK responses only
    std::vector<std::string> bodies; ///< by request id, when dump
    uint64_t sent = 0;
    uint64_t ok = 0;
    uint64_t overloaded = 0;
    uint64_t errors = 0;
    uint64_t expired = 0;
    uint64_t retries = 0;
    std::string failure; ///< first worker-fatal condition
};

void
setFailure(RunState &state, std::string message)
{
    std::lock_guard<std::mutex> guard(state.lock);
    if (state.failure.empty())
        state.failure = std::move(message);
}

/** Count a response that will not be retried. */
void
countTerminal(RunState &state, Response &response)
{
    const uint64_t now = core::monotonicNanos();
    std::lock_guard<std::mutex> guard(state.lock);
    switch (response.status) {
    case Status::kOk:
        ++state.ok;
        if (response.id < state.scheduledNanos.size()) {
            // Retries keep the original stamp: the latency of a
            // request that needed resends is its full observed wait.
            state.latencies.push_back(
                now - state.scheduledNanos[response.id]);
        }
        if (state.dump && response.id < state.bodies.size())
            state.bodies[response.id] = std::move(response.body);
        break;
    case Status::kOverloaded:
        ++state.overloaded;
        break;
    case Status::kError:
        ++state.errors;
        break;
    case Status::kDeadlineExceeded:
        ++state.expired;
        break;
    }
}

/**
 * Whether @p response should be resent (OVERLOADED with budget left).
 * Books the retry when so.
 */
bool
wantRetry(RunState &state, const LoadgenConfig &config,
          const Response &response)
{
    if (response.status != Status::kOverloaded)
        return false;
    if (response.id >= state.attempts.size() ||
        state.attempts[response.id] >= config.maxRetries)
        return false;
    ++state.attempts[response.id];
    {
        std::lock_guard<std::mutex> guard(state.lock);
        ++state.retries;
    }
    obsRetries.add();
    return true;
}

/**
 * Read until one complete response decodes. @return nullopt (with the
 * run failure set) when the stream dies or frames are malformed.
 */
std::optional<Response>
awaitOne(int fd, FrameDecoder &decoder, RunState &state)
{
    std::string payload;
    char buffer[64 * 1024];
    for (;;) {
        if (decoder.next(payload)) {
            Response response;
            std::string error;
            if (!decodeResponse(payload, response, error)) {
                setFailure(state,
                           "loadgen: malformed response: " + error);
                return std::nullopt;
            }
            return response;
        }
        if (decoder.error()) {
            setFailure(state, "loadgen: malformed response frame: " +
                                  decoder.errorMessage());
            return std::nullopt;
        }
        const ssize_t got = ::read(fd, buffer, sizeof(buffer));
        if (got < 0 && errno == EINTR)
            continue;
        if (got <= 0) {
            setFailure(
                state,
                got == 0
                    ? "loadgen: daemon closed the connection mid-run"
                    : std::string("loadgen: read failed: ") +
                          std::strerror(errno));
            return std::nullopt;
        }
        decoder.feed(buffer, static_cast<size_t>(got));
    }
}

/**
 * Closed loop: one request outstanding — send, await, repeat; an
 * OVERLOADED response backs off and resends in place. Latency runs
 * from the first actual send (scheduledNanos is stamped here).
 */
void
closedLoopWorker(int fd, const std::vector<RequestSpec> &specs,
                 RunState &state, const LoadgenConfig &config,
                 uint64_t rngSeed)
{
    core::Xoshiro256StarStar rng(rngSeed);
    FrameDecoder decoder;
    for (const RequestSpec &spec : specs) {
        state.scheduledNanos[spec.id] = core::monotonicNanos();
        for (;;) {
            if (!writeAll(fd, spec.frame)) {
                setFailure(state,
                           std::string("loadgen: write failed: ") +
                               std::strerror(errno));
                return;
            }
            {
                std::lock_guard<std::mutex> guard(state.lock);
                ++state.sent;
            }
            std::optional<Response> response =
                awaitOne(fd, decoder, state);
            if (!response)
                return;
            if (wantRetry(state, config, *response)) {
                sleepUntilNanos(core::monotonicNanos() +
                                backoffNanos(state.attempts[spec.id],
                                             config.retryBaseUs, rng));
                continue;
            }
            countTerminal(state, *response);
            break;
        }
    }
}

/** Pending resends for one open-loop connection, min-heap by due
 *  time, merged into the sender's Poisson schedule. */
struct RetryQueue
{
    std::mutex lock;
    std::condition_variable cv;
    using Entry = std::pair<uint64_t, uint64_t>; ///< {dueNanos, id}
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        heap;
    bool done = false;
};

/**
 * Open loop: a sender thread fires each request at its scheduled
 * (Poisson) arrival time whether or not earlier responses are back;
 * this thread receives and schedules bounded OVERLOADED resends back
 * through the sender. Latency runs from the *scheduled* time, so
 * server-induced queueing — and retry backoff — is charged to the
 * server (no coordinated omission).
 */
void
openLoopWorker(int fd, const std::vector<RequestSpec> &specs,
               RunState &state, const LoadgenConfig &config,
               uint64_t rngSeed)
{
    std::unordered_map<uint64_t, const std::string *> frameOf;
    frameOf.reserve(specs.size());
    for (const RequestSpec &spec : specs)
        frameOf.emplace(spec.id, &spec.frame);

    RetryQueue retry;
    std::thread sender([fd, &specs, &state, &retry, &frameOf] {
        size_t next = 0;
        std::unique_lock<std::mutex> guard(retry.lock);
        for (;;) {
            if (retry.done)
                return;
            // The next event is the earlier of the schedule head and
            // the retry heap head.
            uint64_t due = UINT64_MAX;
            uint64_t id = 0;
            bool fromHeap = false;
            if (next < specs.size()) {
                id = specs[next].id;
                due = state.scheduledNanos[id];
            }
            if (!retry.heap.empty() && retry.heap.top().first < due) {
                due = retry.heap.top().first;
                id = retry.heap.top().second;
                fromHeap = true;
            }
            if (due == UINT64_MAX) {
                // Schedule exhausted; wait for a late retry or done.
                retry.cv.wait(guard);
                continue;
            }
            const uint64_t now = core::monotonicNanos();
            if (now < due) {
                // Sleep interruptibly: a retry due sooner (or done)
                // re-evaluates the next event.
                retry.cv.wait_for(guard,
                                  std::chrono::nanoseconds(due - now));
                continue;
            }
            const std::string &frame =
                fromHeap ? *frameOf.at(id) : specs[next].frame;
            if (fromHeap)
                retry.heap.pop();
            else
                ++next;
            guard.unlock();
            if (!writeAll(fd, frame)) {
                setFailure(state,
                           std::string("loadgen: write failed: ") +
                               std::strerror(errno));
                guard.lock();
                return;
            }
            {
                std::lock_guard<std::mutex> count(state.lock);
                ++state.sent;
            }
            guard.lock();
        }
    });

    core::Xoshiro256StarStar rng(rngSeed);
    FrameDecoder decoder;
    std::string payload;
    char buffer[64 * 1024];
    size_t terminal = 0;
    bool dead = false;
    while (terminal < specs.size() && !dead) {
        const ssize_t got = ::read(fd, buffer, sizeof(buffer));
        if (got < 0 && errno == EINTR)
            continue;
        if (got <= 0) {
            setFailure(
                state,
                got == 0
                    ? "loadgen: daemon closed the connection mid-run"
                    : std::string("loadgen: read failed: ") +
                          std::strerror(errno));
            break;
        }
        decoder.feed(buffer, static_cast<size_t>(got));
        while (decoder.next(payload)) {
            Response response;
            std::string error;
            if (!decodeResponse(payload, response, error)) {
                setFailure(state,
                           "loadgen: malformed response: " + error);
                dead = true;
                break;
            }
            if (wantRetry(state, config, response)) {
                const uint64_t due =
                    core::monotonicNanos() +
                    backoffNanos(state.attempts[response.id],
                                 config.retryBaseUs, rng);
                {
                    std::lock_guard<std::mutex> guard(retry.lock);
                    retry.heap.emplace(due, response.id);
                }
                retry.cv.notify_all();
                continue;
            }
            countTerminal(state, response);
            ++terminal;
        }
        if (decoder.error()) {
            setFailure(state, "loadgen: malformed response frame: " +
                                  decoder.errorMessage());
            break;
        }
    }
    {
        std::lock_guard<std::mutex> guard(retry.lock);
        retry.done = true;
    }
    retry.cv.notify_all();
    sender.join();
}

uint64_t
exactQuantile(const std::vector<uint64_t> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    if (rank == 0)
        rank = 1;
    if (rank > sorted.size())
        rank = sorted.size();
    return sorted[rank - 1];
}

} // namespace

LoadgenReport
runLoadgen(const LoadgenConfig &config,
           const std::vector<seq::Sequence> &reads)
{
    if (reads.empty())
        core::fatal("loadgen: no reads to send");
    const size_t connections = std::max<size_t>(1, config.connections);
    const size_t readsPerRequest =
        std::max<size_t>(1, config.readsPerRequest);

    // Total request count: explicit, or (digest mode) one sequential
    // pass over the read set.
    const size_t total =
        config.requests > 0
            ? config.requests
            : (reads.size() + readsPerRequest - 1) / readsPerRequest;

    // Pre-build every frame so measurement excludes payload
    // formatting; ids are dense [0, total) and double as indices.
    std::vector<RequestSpec> specs(total);
    for (size_t i = 0; i < total; ++i) {
        Request request;
        request.id = i;
        if (config.timeoutUs > 0) {
            request.hasDeadline = true;
            request.deadlineUs = config.timeoutUs;
        }
        // Load mode cycles the read set; digest mode is one exact
        // pass, so its final request may carry fewer reads.
        const size_t first = i * readsPerRequest;
        const size_t count =
            config.requests > 0
                ? readsPerRequest
                : std::min(readsPerRequest, reads.size() - first);
        request.fastq = formatFastq(reads, first, count);
        specs[i].id = i;
        specs[i].frame = encodeRequest(request);
    }

    // Open loop: Poisson arrivals at config.rate across the whole run.
    if (config.rate > 0.0) {
        core::Xoshiro256StarStar rng(config.seed);
        double clock = 0.0;
        for (size_t i = 0; i < total; ++i) {
            const double u = rng.uniform();
            clock += -std::log(1.0 - u) / config.rate;
            specs[i].scheduledOffsetNanos =
                static_cast<uint64_t>(clock * 1e9);
        }
    }

    // A daemon that hangs up mid-run must surface as a write error on
    // this side, not SIGPIPE death.
    std::signal(SIGPIPE, SIG_IGN);

    // Connect on this thread so a dead socket is a clean fatal before
    // any worker exists.
    std::vector<int> fds(connections, -1);
    for (size_t c = 0; c < connections; ++c)
        fds[c] = connectTo(config.socketPath);

    // Round-robin assignment keeps per-connection schedules ordered.
    std::vector<std::vector<RequestSpec>> perConnection(connections);
    for (size_t i = 0; i < total; ++i)
        perConnection[i % connections].push_back(specs[i]);

    RunState state;
    state.dump = !config.dumpPath.empty();
    state.scheduledNanos.assign(total, 0);
    state.attempts.assign(total, 0);
    if (state.dump)
        state.bodies.assign(total, std::string());
    state.latencies.reserve(total);
    state.startNanos = core::monotonicNanos();
    if (config.rate > 0.0) {
        for (size_t i = 0; i < total; ++i) {
            state.scheduledNanos[i] =
                state.startNanos + specs[i].scheduledOffsetNanos;
        }
    }

    std::vector<std::thread> workers;
    workers.reserve(connections);
    for (size_t c = 0; c < connections; ++c) {
        const std::vector<RequestSpec> &mine = perConnection[c];
        const int fd = fds[c];
        // Distinct backoff-jitter streams per connection, derived
        // from the run seed so the whole run replays from one value.
        const uint64_t rngSeed =
            config.seed ^ (0x9e3779b97f4a7c15ull * (c + 1));
        workers.emplace_back([fd, &mine, &state, &config, rngSeed] {
            if (config.rate > 0.0)
                openLoopWorker(fd, mine, state, config, rngSeed);
            else
                closedLoopWorker(fd, mine, state, config, rngSeed);
        });
    }
    for (std::thread &worker : workers)
        worker.join();
    const uint64_t endNanos = core::monotonicNanos();
    for (int fd : fds)
        ::close(fd);

    if (!state.failure.empty())
        core::fatal(state.failure);

    if (state.dump) {
        core::CheckedWriter writer(config.dumpPath);
        for (const std::string &body : state.bodies)
            writer.stream() << body;
        writer.finish();
    }

    LoadgenReport report;
    report.sent = state.sent;
    report.ok = state.ok;
    report.overloaded = state.overloaded;
    report.errors = state.errors;
    report.deadlineExceeded = state.expired;
    report.retries = state.retries;
    report.wallSeconds =
        static_cast<double>(endNanos - state.startNanos) / 1e9;
    report.throughputRps =
        report.wallSeconds > 0.0
            ? static_cast<double>(report.ok) / report.wallSeconds
            : 0.0;
    std::sort(state.latencies.begin(), state.latencies.end());
    report.p50Nanos = exactQuantile(state.latencies, 0.50);
    report.p99Nanos = exactQuantile(state.latencies, 0.99);
    report.p999Nanos = exactQuantile(state.latencies, 0.999);
    report.maxNanos =
        state.latencies.empty() ? 0 : state.latencies.back();
    return report;
}

Response
runControl(const std::string &socketPath, MsgType type)
{
    std::signal(SIGPIPE, SIG_IGN);
    const int fd = connectTo(socketPath);
    if (!writeAll(fd, encodeControl(type, 0))) {
        const int writeErrno = errno;
        ::close(fd);
        core::fatal("ctl: write failed: ", std::strerror(writeErrno));
    }
    FrameDecoder decoder;
    std::string payload;
    char buffer[64 * 1024];
    for (;;) {
        if (decoder.next(payload)) {
            Response response;
            std::string error;
            if (!decodeResponse(payload, response, error)) {
                ::close(fd);
                core::fatal("ctl: malformed response: ", error);
            }
            ::close(fd);
            return response;
        }
        if (decoder.error()) {
            const std::string what = decoder.errorMessage();
            ::close(fd);
            core::fatal("ctl: malformed response frame: ", what);
        }
        const ssize_t got = ::read(fd, buffer, sizeof(buffer));
        if (got < 0 && errno == EINTR)
            continue;
        if (got <= 0) {
            ::close(fd);
            core::fatal(got == 0 ? "ctl: daemon closed the connection "
                                   "before answering"
                                 : "ctl: read failed");
        }
        decoder.feed(buffer, static_cast<size_t>(got));
    }
}

} // namespace pgb::serve
