#include "serve/loadgen.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstring>
#include <mutex>
#include <sstream>
#include <thread>

#include "core/io.hpp"
#include "core/logging.hpp"
#include "core/rng.hpp"
#include "core/timer.hpp"
#include "serve/protocol.hpp"

namespace pgb::serve {

namespace {

/** One pre-built request: its encoded frame and, for the open loop,
 *  its scheduled arrival offset from the run start. */
struct RequestSpec
{
    uint64_t id = 0;
    std::string frame;
    uint64_t scheduledOffsetNanos = 0;
};

/** Render @p reads as the FASTQ payload of one request. */
std::string
formatFastq(const std::vector<seq::Sequence> &reads, size_t first,
            size_t count)
{
    std::ostringstream out;
    for (size_t i = 0; i < count; ++i) {
        const seq::Sequence &read = reads[(first + i) % reads.size()];
        const std::string bases = read.toString();
        out << '@' << read.name() << '\n'
            << bases << "\n+\n"
            << std::string(bases.size(), 'I') << '\n';
    }
    return out.str();
}

int
connectTo(const std::string &path)
{
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(address.sun_path)) {
        core::fatal("loadgen: socket path '", path, "' must be 1-",
                    sizeof(address.sun_path) - 1, " characters");
    }
    std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        core::fatal("loadgen: cannot create socket: ",
                    std::strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&address),
                  sizeof(address)) < 0) {
        const int connectErrno = errno;
        ::close(fd);
        core::fatal("loadgen: cannot connect to '", path,
                    "': ", std::strerror(connectErrno),
                    " (is the daemon running?)");
    }
    return fd;
}

/** Full write with EINTR handling. @return false on error. */
bool
writeAll(int fd, const std::string &bytes)
{
    size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t wrote =
            ::write(fd, bytes.data() + sent, bytes.size() - sent);
        if (wrote < 0 && errno == EINTR)
            continue;
        if (wrote <= 0)
            return false;
        sent += static_cast<size_t>(wrote);
    }
    return true;
}

void
sleepUntilNanos(uint64_t targetNanos)
{
    for (;;) {
        const uint64_t now = core::monotonicNanos();
        if (now >= targetNanos)
            return;
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(targetNanos - now));
    }
}

/** Shared measurement state, written by connection workers. */
struct RunState
{
    uint64_t startNanos = 0;
    bool dump = false;
    std::vector<uint64_t> scheduledNanos; ///< absolute, by request id

    std::mutex lock;
    std::vector<uint64_t> latencies; ///< OK responses only
    std::vector<std::string> bodies; ///< by request id, when dump
    uint64_t sent = 0;
    uint64_t ok = 0;
    uint64_t overloaded = 0;
    uint64_t errors = 0;
    std::string failure; ///< first worker-fatal condition
};

/** Record a decoded response; @return false to stop the connection. */
bool
recordResponse(RunState &state, const std::string &payload)
{
    Response response;
    std::string error;
    if (!decodeResponse(payload, response, error)) {
        std::lock_guard<std::mutex> guard(state.lock);
        if (state.failure.empty())
            state.failure = "loadgen: malformed response: " + error;
        return false;
    }
    const uint64_t now = core::monotonicNanos();
    std::lock_guard<std::mutex> guard(state.lock);
    switch (response.status) {
    case Status::kOk:
        ++state.ok;
        if (response.id < state.scheduledNanos.size()) {
            state.latencies.push_back(
                now - state.scheduledNanos[response.id]);
        }
        if (state.dump && response.id < state.bodies.size())
            state.bodies[response.id] = std::move(response.body);
        break;
    case Status::kOverloaded:
        ++state.overloaded;
        break;
    case Status::kError:
        ++state.errors;
        break;
    }
    return true;
}

/** Drain @p fd until @p expected responses arrive or the stream dies. */
void
receiveLoop(int fd, size_t expected, RunState &state)
{
    FrameDecoder decoder;
    std::string payload;
    char buffer[64 * 1024];
    size_t received = 0;
    while (received < expected) {
        const ssize_t got = ::read(fd, buffer, sizeof(buffer));
        if (got < 0 && errno == EINTR)
            continue;
        if (got <= 0) {
            std::lock_guard<std::mutex> guard(state.lock);
            if (state.failure.empty()) {
                state.failure =
                    got == 0
                        ? "loadgen: daemon closed the connection mid-run"
                        : std::string("loadgen: read failed: ") +
                              std::strerror(errno);
            }
            return;
        }
        decoder.feed(buffer, static_cast<size_t>(got));
        while (decoder.next(payload)) {
            if (!recordResponse(state, payload))
                return;
            ++received;
        }
        if (decoder.error()) {
            std::lock_guard<std::mutex> guard(state.lock);
            if (state.failure.empty()) {
                state.failure = "loadgen: malformed response frame: " +
                                decoder.errorMessage();
            }
            return;
        }
    }
}

/**
 * Closed loop: one request outstanding — send, await, repeat. Latency
 * runs from the actual send (scheduledNanos is stamped here).
 */
void
closedLoopWorker(int fd, const std::vector<RequestSpec> &specs,
                 RunState &state)
{
    FrameDecoder decoder;
    std::string payload;
    char buffer[64 * 1024];
    for (const RequestSpec &spec : specs) {
        state.scheduledNanos[spec.id] = core::monotonicNanos();
        if (!writeAll(fd, spec.frame)) {
            std::lock_guard<std::mutex> guard(state.lock);
            if (state.failure.empty()) {
                state.failure = std::string("loadgen: write failed: ") +
                                std::strerror(errno);
            }
            return;
        }
        {
            std::lock_guard<std::mutex> guard(state.lock);
            ++state.sent;
        }
        bool answered = false;
        while (!answered) {
            const ssize_t got = ::read(fd, buffer, sizeof(buffer));
            if (got < 0 && errno == EINTR)
                continue;
            if (got <= 0) {
                std::lock_guard<std::mutex> guard(state.lock);
                if (state.failure.empty()) {
                    state.failure =
                        got == 0 ? "loadgen: daemon closed the "
                                   "connection mid-run"
                                 : std::string(
                                       "loadgen: read failed: ") +
                                       std::strerror(errno);
                }
                return;
            }
            decoder.feed(buffer, static_cast<size_t>(got));
            while (decoder.next(payload)) {
                if (!recordResponse(state, payload))
                    return;
                answered = true;
            }
            if (decoder.error()) {
                std::lock_guard<std::mutex> guard(state.lock);
                if (state.failure.empty()) {
                    state.failure =
                        "loadgen: malformed response frame: " +
                        decoder.errorMessage();
                }
                return;
            }
        }
    }
}

/**
 * Open loop: a sender thread fires each request at its scheduled
 * (Poisson) arrival time whether or not earlier responses are back;
 * this thread receives. Latency runs from the *scheduled* time, so
 * server-induced queueing is charged to the server (no coordinated
 * omission).
 */
void
openLoopWorker(int fd, const std::vector<RequestSpec> &specs,
               RunState &state)
{
    std::thread sender([fd, &specs, &state] {
        for (const RequestSpec &spec : specs) {
            sleepUntilNanos(state.scheduledNanos[spec.id]);
            if (!writeAll(fd, spec.frame)) {
                std::lock_guard<std::mutex> guard(state.lock);
                if (state.failure.empty()) {
                    state.failure =
                        std::string("loadgen: write failed: ") +
                        std::strerror(errno);
                }
                return;
            }
            std::lock_guard<std::mutex> guard(state.lock);
            ++state.sent;
        }
    });
    receiveLoop(fd, specs.size(), state);
    sender.join();
}

uint64_t
exactQuantile(const std::vector<uint64_t> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    if (rank == 0)
        rank = 1;
    if (rank > sorted.size())
        rank = sorted.size();
    return sorted[rank - 1];
}

} // namespace

LoadgenReport
runLoadgen(const LoadgenConfig &config,
           const std::vector<seq::Sequence> &reads)
{
    if (reads.empty())
        core::fatal("loadgen: no reads to send");
    const size_t connections = std::max<size_t>(1, config.connections);
    const size_t readsPerRequest =
        std::max<size_t>(1, config.readsPerRequest);

    // Total request count: explicit, or (digest mode) one sequential
    // pass over the read set.
    const size_t total =
        config.requests > 0
            ? config.requests
            : (reads.size() + readsPerRequest - 1) / readsPerRequest;

    // Pre-build every frame so measurement excludes payload
    // formatting; ids are dense [0, total) and double as indices.
    std::vector<RequestSpec> specs(total);
    for (size_t i = 0; i < total; ++i) {
        Request request;
        request.id = i;
        // Load mode cycles the read set; digest mode is one exact
        // pass, so its final request may carry fewer reads.
        const size_t first = i * readsPerRequest;
        const size_t count =
            config.requests > 0
                ? readsPerRequest
                : std::min(readsPerRequest, reads.size() - first);
        request.fastq = formatFastq(reads, first, count);
        specs[i].id = i;
        specs[i].frame = encodeRequest(request);
    }

    // Open loop: Poisson arrivals at config.rate across the whole run.
    if (config.rate > 0.0) {
        core::Xoshiro256StarStar rng(config.seed);
        double clock = 0.0;
        for (size_t i = 0; i < total; ++i) {
            const double u = rng.uniform();
            clock += -std::log(1.0 - u) / config.rate;
            specs[i].scheduledOffsetNanos =
                static_cast<uint64_t>(clock * 1e9);
        }
    }

    // A daemon that hangs up mid-run must surface as a write error on
    // this side, not SIGPIPE death.
    std::signal(SIGPIPE, SIG_IGN);

    // Connect on this thread so a dead socket is a clean fatal before
    // any worker exists.
    std::vector<int> fds(connections, -1);
    for (size_t c = 0; c < connections; ++c)
        fds[c] = connectTo(config.socketPath);

    // Round-robin assignment keeps per-connection schedules ordered.
    std::vector<std::vector<RequestSpec>> perConnection(connections);
    for (size_t i = 0; i < total; ++i)
        perConnection[i % connections].push_back(specs[i]);

    RunState state;
    state.dump = !config.dumpPath.empty();
    state.scheduledNanos.assign(total, 0);
    if (state.dump)
        state.bodies.assign(total, std::string());
    state.latencies.reserve(total);
    state.startNanos = core::monotonicNanos();
    if (config.rate > 0.0) {
        for (size_t i = 0; i < total; ++i) {
            state.scheduledNanos[i] =
                state.startNanos + specs[i].scheduledOffsetNanos;
        }
    }

    std::vector<std::thread> workers;
    workers.reserve(connections);
    for (size_t c = 0; c < connections; ++c) {
        const std::vector<RequestSpec> &mine = perConnection[c];
        const int fd = fds[c];
        workers.emplace_back([fd, &mine, &state, &config] {
            if (config.rate > 0.0)
                openLoopWorker(fd, mine, state);
            else
                closedLoopWorker(fd, mine, state);
        });
    }
    for (std::thread &worker : workers)
        worker.join();
    const uint64_t endNanos = core::monotonicNanos();
    for (int fd : fds)
        ::close(fd);

    if (!state.failure.empty())
        core::fatal(state.failure);

    if (state.dump) {
        core::CheckedWriter writer(config.dumpPath);
        for (const std::string &body : state.bodies)
            writer.stream() << body;
        writer.finish();
    }

    LoadgenReport report;
    report.sent = state.sent;
    report.ok = state.ok;
    report.overloaded = state.overloaded;
    report.errors = state.errors;
    report.wallSeconds =
        static_cast<double>(endNanos - state.startNanos) / 1e9;
    report.throughputRps =
        report.wallSeconds > 0.0
            ? static_cast<double>(report.ok) / report.wallSeconds
            : 0.0;
    std::sort(state.latencies.begin(), state.latencies.end());
    report.p50Nanos = exactQuantile(state.latencies, 0.50);
    report.p99Nanos = exactQuantile(state.latencies, 0.99);
    report.p999Nanos = exactQuantile(state.latencies, 0.999);
    report.maxNanos =
        state.latencies.empty() ? 0 : state.latencies.back();
    return report;
}

} // namespace pgb::serve
