/**
 * @file
 * Time/size-windowed request coalescing for the mapping daemon.
 *
 * One mapBatch() call amortizes its fixed costs (mapper construction,
 * parallel-region setup, pool wake) over every read it carries, and
 * the work-stealing pool only load-balances *within* a batch — so the
 * daemon wants batches as large as the latency budget allows, and no
 * larger. The Batcher implements the classic two-trigger window over
 * the AdmissionQueue:
 *
 *   - **size**: flush as soon as >= maxBatchReads reads are queued
 *     (a saturated daemon runs back-to-back full batches and the
 *     window adds zero latency);
 *   - **time**: otherwise flush maxWaitUs after the *oldest* queued
 *     request was admitted (an idle daemon answers a lone request
 *     within the wait bound — the window never holds a request
 *     hostage waiting for company that is not coming).
 *
 * The deadline is anchored on the oldest request's admission time,
 * not on when the batcher got around to looking: if a long mapBatch
 * call left requests waiting past their window, the next batch
 * flushes immediately.
 *
 * Batches respect request boundaries (a response is built from
 * exactly one batch); a single request larger than maxBatchReads
 * forms its own oversized batch.
 */

#ifndef PGB_SERVE_BATCHER_HPP
#define PGB_SERVE_BATCHER_HPP

#include <cstdint>
#include <vector>

#include "serve/admission.hpp"

namespace pgb::serve {

/** Coalesces admitted requests into mapBatch-sized windows. */
class Batcher
{
  public:
    /**
     * @param queue        the admission queue to consume
     * @param maxBatchReads size trigger, in reads
     * @param maxWaitUs    time trigger, microseconds from admission
     *                     of the oldest queued request
     */
    Batcher(AdmissionQueue &queue, size_t maxBatchReads,
            uint64_t maxWaitUs);

    /**
     * Block for the next flush window and fill @p out with the
     * batch's requests (admission order).
     * @return false when the queue is closed and fully drained —
     *         the consumer loop's exit condition. During shutdown
     *         remaining requests still come out as final batches.
     */
    bool nextBatch(std::vector<Pending> &out);

    size_t maxBatchReads() const { return maxBatchReads_; }
    uint64_t maxWaitUs() const { return maxWaitUs_; }

  private:
    AdmissionQueue &queue_;
    const size_t maxBatchReads_;
    const uint64_t maxWaitUs_;
};

} // namespace pgb::serve

#endif // PGB_SERVE_BATCHER_HPP
