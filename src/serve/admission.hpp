/**
 * @file
 * Admission control for the mapping daemon: a bounded request queue
 * that sheds load instead of buffering without bound.
 *
 * Connection readers push decoded requests; the batcher pops them.
 * The queue holds at most `depth` requests: a push against a full
 * queue returns kShed immediately — the caller answers the client
 * with an explicit OVERLOADED response — so a traffic burst costs the
 * *client* a fast rejection instead of costing the *server* unbounded
 * memory and every other client unbounded latency. This is the
 * standard bounded-queue/backpressure contract of serving systems;
 * the paper's characterization motivates it directly (read mapping is
 * the dominant, memory-bound stage — queueing more of it behind a
 * saturated pool only grows RSS and tail latency).
 *
 * The queue tracks two sizes: depth() in requests (the admission
 * bound, exported as the `serve.queue_depth` gauge) and weight() in
 * reads (what a mapBatch() call actually costs), which the batcher's
 * size window is measured in.
 */

#ifndef PGB_SERVE_ADMISSION_HPP
#define PGB_SERVE_ADMISSION_HPP

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "seq/sequence.hpp"

namespace pgb::serve {

/** One admitted mapping request, waiting for a batch window. */
struct Pending
{
    uint64_t id = 0;
    std::vector<seq::Sequence> reads;
    /** Opaque handle to the submitting connection (the server stores
     *  its Connection; tests leave it null). */
    std::shared_ptr<void> client;
    /** monotonicNanos() at admission, for the latency histogram and
     *  the batcher's time window. */
    uint64_t enqueueNanos = 0;
    /** Absolute monotonicNanos() deadline; 0 = no deadline. A request
     *  past its deadline is answered DEADLINE_EXCEEDED (at admission
     *  or by the batcher) and never reaches mapBatch(). */
    uint64_t deadlineNanos = 0;
};

/** Bounded MPSC request queue with explicit shed. */
class AdmissionQueue
{
  public:
    enum class Push
    {
        kAccepted,
        kShed,   ///< queue at depth bound; answer OVERLOADED
        kClosed, ///< shutting down; answer nothing
    };

    /** @param depth maximum queued requests before shedding. */
    explicit AdmissionQueue(size_t depth);

    ~AdmissionQueue();

    AdmissionQueue(const AdmissionQueue &) = delete;
    AdmissionQueue &operator=(const AdmissionQueue &) = delete;

    /** Admit or shed @p item; never blocks. */
    Push push(Pending item);

    /**
     * Block until the queue is non-empty or closed.
     * @return false when closed *and* drained (the consumer's exit
     *         condition); queued items are still delivered first.
     */
    bool waitNonEmpty();

    /**
     * Block until @p done(depth, weight) holds, @p deadline passes,
     * or the queue closes. @p done is evaluated under the queue lock.
     */
    void waitUntil(
        const std::function<bool(size_t depth, size_t weight)> &done,
        std::chrono::steady_clock::time_point deadline);

    /**
     * Pop whole requests until the next would push the popped weight
     * past @p maxWeight; always pops at least one when non-empty (a
     * single oversized request forms its own batch).
     */
    std::vector<Pending> drain(size_t maxWeight);

    /** enqueueNanos of the oldest queued request; 0 when empty. */
    uint64_t frontEnqueueNanos() const;

    /** Stop admitting; wake every waiter. Idempotent. */
    void close();

    bool closed() const;

    /** Queued requests (the admission bound's unit). */
    size_t depth() const;

    /** Queued reads (the batch window's unit). */
    size_t weight() const;

  private:
    const size_t depthBound_;
    mutable std::mutex lock_;
    std::condition_variable ready_;
    std::deque<Pending> items_;
    size_t weight_ = 0;
    bool closed_ = false;
};

} // namespace pgb::serve

#endif // PGB_SERVE_ADMISSION_HPP
