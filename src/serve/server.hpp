/**
 * @file
 * The `pgb serve` daemon: a long-lived, batching, backpressured
 * read-mapping server over a hot-swappable MappingContext.
 *
 * This is the subsystem the build-once/map-many split (PR 5) was
 * built for: every prior way to run the mapper paid per-invocation
 * process startup and index load, which PangenomicsBench's own
 * characterization shows is the wrong shape for the dominant,
 * memory-bound kernel of the pipeline. The Server loads one
 * shared_ptr<const MappingContext> (typically mmap-loaded from a
 * `.pgbi` artifact in milliseconds) and serves mapping requests
 * until told to stop:
 *
 *   client frames ──> per-connection reader ──> AdmissionQueue
 *       (bounded; full => OVERLOADED)  ──> Batcher (time/size window)
 *       ──> mapBatch() on the work-stealing pool ──> response frames
 *
 * Transport is a Unix-domain stream socket (one reader thread per
 * connection), or stdin/stdout with `stdio = true` — the same framed
 * protocol, one implicit connection, EOF-terminated.
 *
 * Survivability layer (this file's reason to exist beyond PR 6):
 *
 *  - Deadlines: a request may carry a µs budget; once it lapses the
 *    request is answered DEADLINE_EXCEEDED — at admission, or by the
 *    batcher before composition — and never consumes mapBatch() work.
 *  - Hot reload: requestReload() (wired to SIGHUP by the CLI) or an
 *    admin RELOAD frame loads and fully validates config_.indexPath
 *    off-thread, then swaps the context atomically *between* batches;
 *    in-flight batches finish on the old context, and a failed load
 *    warns and keeps serving the old index (graceful degradation,
 *    DESIGN.md §6). serve.reload is the injectable failure.
 *  - Health: PING answers OK "pong"; STATUS answers OK with a full
 *    obs metrics snapshot (pgb.metrics.v1 JSON) as the body. Control
 *    frames bypass the admission queue — a health check must not be
 *    sheddable.
 *  - Watchdog: a monitor thread checks, every poll tick, that no
 *    batch has been inside mapBatch() longer than stallBudgetMs; on a
 *    stall it emits a diagnostic dump (open connections, queue depth,
 *    oldest admission age) and force-exits 1 — crash-only serving —
 *    unless onStall overrides the action (tests). serve.stall injects
 *    a stall.
 *
 * Error-handling contract (DESIGN.md §6): connection-level failures —
 * an injected or real accept()/read()/write() failure (fault sites
 * `serve.accept`, `serve.read`, `serve.write`), a framing violation,
 * a peer disconnect — cost exactly that connection, with a one-line
 * warn(); the daemon keeps serving. Request-level failures (malformed
 * FASTQ inside a valid frame, a mapping fault) cost one ERROR
 * response. Only environment errors at startup (unusable socket path,
 * bad artifact) and stdio framing violations (the sole peer is gone)
 * are fatal().
 *
 * Everything is observable through pgb::obs: serve.{connections,
 * requests,responses,admitted,shed,batches,batched_reads,bad_frames,
 * bad_requests,errors,deadline_exceeded,reloads_ok,reloads_failed,
 * watchdog_stalls} counters, the serve.queue_depth gauge, and the
 * serve.request_nanos latency histogram (admission to response
 * written), plus serve.batch / serve.request / serve.reload tracing
 * spans.
 */

#ifndef PGB_SERVE_SERVER_HPP
#define PGB_SERVE_SERVER_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/context.hpp"
#include "pipeline/mapper.hpp"
#include "serve/admission.hpp"
#include "serve/protocol.hpp"

namespace pgb::serve {

/** Daemon configuration (`pgb serve` flags). */
struct ServeConfig
{
    /** Unix-domain socket path to create (socket mode). */
    std::string socketPath;
    /** Serve the framed protocol over fds 0/1 instead of a socket. */
    bool stdio = false;
    /** Batch size trigger, in reads (see Batcher). */
    size_t maxBatchReads = 256;
    /** Batch time trigger, microseconds from oldest admission. */
    uint64_t maxWaitUs = 2000;
    /** Admission bound, in queued requests; beyond it, shed. */
    size_t queueDepth = 256;
    /** mapBatch() width; 0 = hardwareThreads(). */
    unsigned threads = 0;
    /** Mapping tool profile served. */
    pipeline::ToolProfile profile = pipeline::ToolProfile::kVgMap;
    /** Seeding backend; must match the context the server is given,
     *  and is reapplied by hot reloads. */
    pipeline::SeederKind seeder = pipeline::SeederKind::kMinimizer;
    /**
     * `.pgbi` artifact (re)loaded by a hot reload (SIGHUP / RELOAD
     * frame). Empty = reload unsupported (unless shardsPath is set);
     * a reload attempt then fails gracefully (ERROR response / warn)
     * and keeps serving.
     */
    std::string indexPath;
    /**
     * `.pgbs` shard-set manifest to serve instead of a monolithic
     * artifact (`pgb serve --shards`): shards are mmapped lazily on
     * first touch and evicted under shardCacheMb. Mutually exclusive
     * with indexPath; hot reloads re-open the manifest.
     */
    std::string shardsPath;
    /** Shard-set resident budget in MiB (0 = unlimited). */
    uint64_t shardCacheMb = 0;
    /**
     * Watchdog stall budget for one batch, in milliseconds; a batch
     * inside mapBatch() longer than this triggers the stall action.
     * 0 disables the watchdog.
     */
    uint64_t stallBudgetMs = 20000;
    /**
     * Stall action override. Default (unset): write the diagnostic
     * dump to stderr and _Exit(1) — a wedged daemon must die loudly
     * with a clean non-zero exit, not hang its clients. Tests install
     * a hook to observe the dump without dying.
     */
    std::function<void(const std::string &dump)> onStall;
    /**
     * Invoked once the daemon is actually accepting work (socket
     * bound and listening, or stdio loop entered) — the right place
     * for a "ready" banner, so a failed bind never claims readiness.
     */
    std::function<void()> onReady;
};

/** A running (or runnable) mapping daemon. */
class Server
{
  public:
    /**
     * Validates the profile against the context (the giraffe profile
     * requires a GBWT — fatal here, not per batch) and adopts the
     * context's index geometry.
     */
    Server(std::shared_ptr<const pipeline::MappingContext> context,
           ServeConfig config);

    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Serve until stop() (socket mode) or stdin EOF (stdio mode),
     * then shut down cleanly: stop accepting, drain the queue into
     * final batches, answer everything answerable, join all threads.
     * fatal()s on environment errors (socket path collision, path
     * too long) and, in stdio mode, on a framing violation.
     */
    void run();

    /**
     * Request shutdown. Only touches atomics, so it is safe to call
     * from a signal handler; run() notices within its 100 ms poll.
     */
    void stop() { stop_.store(true, std::memory_order_release); }

    /**
     * Request a hot index reload of config_.indexPath. Only touches
     * an atomic, so it is safe to call from a SIGHUP handler; the
     * monitor thread picks it up within one poll tick. The new index
     * is loaded and validated off-thread and swapped in between
     * batches; on failure the old index keeps serving.
     */
    void
    requestReload()
    {
        reloadRequested_.store(true, std::memory_order_release);
    }

    /**
     * Block until run() is accepting work (listening, or stdio loop
     * entered). @return false if the timeout passed first.
     */
    bool waitReady(uint64_t timeout_ms) const;

    /** Lifetime totals, for the daemon's exit summary line. */
    struct Totals
    {
        uint64_t connections = 0;
        uint64_t requests = 0; ///< well-formed requests received
        uint64_t responses = 0;
        uint64_t shed = 0;
        uint64_t batches = 0;
        uint64_t reads = 0;
        uint64_t badFrames = 0;
        uint64_t deadlineExceeded = 0;
        uint64_t reloadsOk = 0;
        uint64_t reloadsFailed = 0;
        uint64_t watchdogStalls = 0;
    };

    Totals totals() const;

  private:
    struct Connection;

    /** The context/config pair one batch maps against; swapped as a
     *  unit by a hot reload, copied per batch by the batcher. */
    struct ServingIndex
    {
        std::shared_ptr<const pipeline::MappingContext> context;
        pipeline::MapperConfig config;
    };

    void runStdio();
    void runSocket();
    void readerLoop(const std::shared_ptr<Connection> &connection);
    void handlePayload(const std::shared_ptr<Connection> &connection,
                       const std::string &payload);
    void batcherLoop();
    void monitorLoop();
    void startReload(std::shared_ptr<Connection> connection, uint64_t id);
    void runReload(std::shared_ptr<Connection> connection, uint64_t id);
    void joinReloader();
    ServingIndex currentIndex() const;
    std::string stallDump(uint64_t stalledNanos) const;
    size_t liveConnections() const;
    void respond(const std::shared_ptr<Connection> &connection,
                 uint64_t id, Status status, std::string body);
    bool writeFrame(Connection &connection, const std::string &bytes);
    void markReady();

    std::shared_ptr<const pipeline::MappingContext> context_;
    ServeConfig config_;
    pipeline::MapperConfig mapperConfig_;
    AdmissionQueue queue_;

    /** Guards context_/mapperConfig_ against the hot-reload swap. */
    mutable std::mutex indexLock_;
    std::atomic<bool> reloadRequested_{false};
    std::atomic<bool> reloadInFlight_{false};
    std::mutex reloaderLock_;
    std::thread reloader_;

    std::atomic<bool> monitorStop_{false};
    /** monotonicNanos() when the running batch entered mapBatch();
     *  0 = no batch in flight. The watchdog's stall signal. */
    std::atomic<uint64_t> batchStartNanos_{0};

    std::atomic<bool> stop_{false};
    mutable std::mutex readyLock_;
    mutable std::condition_variable readyCv_;
    bool ready_ = false;

    /** Set by a stdio framing violation; rethrown as fatal by run(). */
    std::string stdioError_;

    mutable std::mutex connectionsLock_;
    std::vector<std::weak_ptr<Connection>> connections_;
    std::vector<std::thread> readers_;
    /** Reader slots finished and ready to join (reaped by accept). */
    std::vector<size_t> finishedReaders_;

    std::atomic<uint64_t> connectionCount_{0};
    std::atomic<uint64_t> requestCount_{0};
    std::atomic<uint64_t> responseCount_{0};
    std::atomic<uint64_t> shedCount_{0};
    std::atomic<uint64_t> batchCount_{0};
    std::atomic<uint64_t> readCount_{0};
    std::atomic<uint64_t> badFrameCount_{0};
    std::atomic<uint64_t> deadlineExceededCount_{0};
    std::atomic<uint64_t> reloadOkCount_{0};
    std::atomic<uint64_t> reloadFailedCount_{0};
    std::atomic<uint64_t> watchdogStallCount_{0};
};

} // namespace pgb::serve

#endif // PGB_SERVE_SERVER_HPP
