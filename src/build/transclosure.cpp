#include "build/transclosure.hpp"

#include <algorithm>

#include "core/logging.hpp"
#include "core/probe.hpp"

namespace pgb::build {

SequenceCatalog::SequenceCatalog(
    const std::vector<seq::Sequence> &sequences)
{
    offsets_.reserve(sequences.size() + 1);
    names_.reserve(sequences.size());
    offsets_.push_back(0);
    size_t total = 0;
    for (const seq::Sequence &sequence : sequences)
        total += sequence.size();
    bases_.reserve(total);
    for (const seq::Sequence &sequence : sequences) {
        bases_.insert(bases_.end(), sequence.codes().begin(),
                      sequence.codes().end());
        offsets_.push_back(bases_.size());
        names_.push_back(sequence.name());
    }
}

size_t
SequenceCatalog::sequenceOf(uint64_t global) const
{
    if (global >= totalBases())
        core::fatal("SequenceCatalog::sequenceOf: position ", global,
                    " past the ", totalBases(), "-base global space");
    const auto it = std::upper_bound(offsets_.begin(), offsets_.end(),
                                     global);
    return static_cast<size_t>(it - offsets_.begin()) - 1;
}

TcResult
transclose(const SequenceCatalog &catalog,
           const std::vector<MatchSegment> &matches,
           const TcOptions &options)
{
    core::NullProbe probe;
    return tcdetail::transcloseImpl(catalog, matches, options, probe);
}

} // namespace pgb::build
