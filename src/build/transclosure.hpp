/**
 * @file
 * Transitive closure graph induction (the paper's TC kernel, from
 * PGGB's seqwish stage).
 *
 * Input: a catalog of haplotype sequences laid out in one global
 * coordinate space, plus exact-match segments between them (from
 * wfmash or ground truth). The kernel unites matched characters into
 * closure classes — transitively, so a~b and b~c puts all three into
 * one class even without a direct a~c match — then emits one graph
 * base per class, compacts non-branching runs into nodes, connects
 * them with edges, and embeds one path per input sequence so every
 * path spells its input exactly (paper §3, Figure 4f).
 *
 * The closure follows seqwish's structure on this repo's substrates:
 * an implicit interval tree over the match set, chunked sweeps of the
 * global sequence space, union-find with whole-range unions, and an
 * atomic bitvector "seen" set during emission. TcOptions::
 * fileBackedMatches reproduces seqwish's mmap mode by staging the
 * match set in a file-backed core::Arena; the induced graph is
 * identical either way, as is the graph under any sweep chunk size.
 */

#ifndef PGB_BUILD_TRANSCLOSURE_HPP
#define PGB_BUILD_TRANSCLOSURE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "graph/pangraph.hpp"
#include "seq/sequence.hpp"

namespace pgb::build {

/**
 * One exact match between two regions of the global sequence space:
 * character aStart+k equals character bStart+k for k in [0, length).
 */
struct MatchSegment
{
    uint64_t aStart = 0; ///< global offset of the first copy
    uint64_t bStart = 0; ///< global offset of the second copy
    uint32_t length = 0; ///< run length in bases
};

/**
 * Input sequences concatenated into one global coordinate space
 * (seqwish's "seqidx"): sequence s occupies [start(s), end(s)).
 */
class SequenceCatalog
{
  public:
    explicit SequenceCatalog(const std::vector<seq::Sequence> &sequences);

    /** Number of catalogued sequences. */
    size_t sequenceCount() const { return names_.size(); }

    /** Total bases across all sequences (the global space size). */
    uint64_t totalBases() const { return offsets_.back(); }

    /** Global offset of the first base of sequence @p s. */
    uint64_t start(size_t s) const { return offsets_[s]; }

    /** Global offset one past the last base of sequence @p s. */
    uint64_t end(size_t s) const { return offsets_[s + 1]; }

    /** Global offset of local position @p offset in sequence @p s. */
    uint64_t
    globalOffset(size_t s, uint64_t offset) const
    {
        return offsets_[s] + offset;
    }

    /** Index of the sequence containing global position @p global. */
    size_t sequenceOf(uint64_t global) const;

    /** Base code at global position @p global. */
    uint8_t baseAt(uint64_t global) const { return bases_[global]; }

    /** Name of sequence @p s. */
    const std::string &name(size_t s) const { return names_[s]; }

  private:
    std::vector<uint8_t> bases_;    ///< concatenated base codes
    std::vector<uint64_t> offsets_; ///< sequenceCount()+1 fence posts
    std::vector<std::string> names_;
};

/** Transclosure kernel options. */
struct TcOptions
{
    /** Global positions swept per chunk (seqwish's transclose-batch). */
    size_t chunkSize = 1 << 16;
    /** Stage the match set in a file-backed Arena (seqwish mmap mode). */
    bool fileBackedMatches = false;
    /**
     * Sweep chunks concurrently on the shared pool with a lock-free
     * union-find. The induced graph is identical at every thread count
     * (the closure partition is interleaving-invariant); <= 1 keeps
     * the exact serial code path. Instrumented probes always run
     * serial regardless of this setting.
     */
    unsigned threads = 1;
};

/** Induced graph plus the kernel's seqwish-style work accounting. */
struct TcResult
{
    graph::PanGraph graph;
    uint64_t closureClasses = 0; ///< distinct classes == graph bases
    uint64_t treeQueries = 0;    ///< interval-tree overlap queries
    uint64_t unions = 0;         ///< union-find merges performed
    uint64_t sweeps = 0;         ///< chunk sweeps over the global space
};

/** Uninstrumented transclosure (NullProbe). */
TcResult transclose(const SequenceCatalog &catalog,
                    const std::vector<MatchSegment> &matches,
                    const TcOptions &options = {});

/** Instrumented transclosure; see tcdetail::transcloseImpl. */
template <typename Probe>
TcResult transclose(const SequenceCatalog &catalog,
                    const std::vector<MatchSegment> &matches,
                    const TcOptions &options, Probe &probe);

} // namespace pgb::build

#include "build/transclosure_impl.hpp"

#endif // PGB_BUILD_TRANSCLOSURE_HPP
