/**
 * @file
 * Probe-templated transclosure kernel body. Included by
 * transclosure.hpp; the characterization benches include this header
 * directly and instantiate tcdetail::transcloseImpl with their own
 * probe types (prof::TraceProbe, core::CountingProbe).
 */

#ifndef PGB_BUILD_TRANSCLOSURE_IMPL_HPP
#define PGB_BUILD_TRANSCLOSURE_IMPL_HPP

#include "build/transclosure.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <type_traits>

#include "core/arena.hpp"
#include "core/bitvector.hpp"
#include "core/interval_tree.hpp"
#include "core/probe.hpp"
#include "core/thread_pool.hpp"
#include "core/union_find.hpp"

namespace pgb::build::tcdetail {

/**
 * The TC kernel (paper §3, Figure 4f): close the match set into
 * character equivalence classes, emit one graph base per class,
 * compact non-branching runs into nodes, and embed every catalog
 * sequence as a path that spells it exactly.
 */
template <typename Probe>
TcResult
transcloseImpl(const SequenceCatalog &catalog,
               const std::vector<MatchSegment> &matches,
               const TcOptions &options, Probe &probe)
{
    TcResult result;
    const uint64_t total = catalog.totalBases();
    if (total == 0)
        return result;

    // ---- 1. Stage the match set in an arena, exactly as seqwish
    // keeps its match mmmulti on disk in mmap mode.
    core::Arena store(options.fileBackedMatches
                          ? core::Arena::Mode::kFileBacked
                          : core::Arena::Mode::kInMemory);
    store.reserve(matches.size() * sizeof(MatchSegment));
    for (const MatchSegment &match : matches) {
        if (match.length > 0)
            store.append(&match, sizeof(match));
    }
    const size_t stored = store.size() / sizeof(MatchSegment);
    const auto matchAt = [&store](size_t index) {
        MatchSegment match;
        std::memcpy(&match, store.at(index * sizeof(MatchSegment)),
                    sizeof(match));
        return match;
    };

    // ---- 2. Implicit interval tree over both sides of every match;
    // the payload encodes (match index << 1 | side).
    core::ImplicitIntervalTree tree;
    for (size_t i = 0; i < stored; ++i) {
        const MatchSegment match = matchAt(i);
        tree.add(match.aStart, match.aStart + match.length, i << 1);
        tree.add(match.bStart, match.bStart + match.length,
                 (i << 1) | 1);
    }
    tree.index();

    // Scratch sized like the union-find parent array; its entries
    // double as the instrumented addresses for the parent-chasing
    // traffic, so the cache model sees the kernel's real 4 B/element
    // random-access pattern.
    constexpr uint32_t kUnassigned =
        std::numeric_limits<uint32_t>::max();
    std::vector<uint32_t> class_of(total, kUnassigned);

    // ---- 3. Chunked sweeps of the global space uniting matched
    // characters. Union-find makes sweep order irrelevant, so the
    // induced graph is invariant to chunkSize (property-tested);
    // chunking bounds the per-sweep working set the way seqwish's
    // transclose-batch does.
    core::UnionFind classes(total);
    const uint64_t chunk = std::max<size_t>(1, options.chunkSize);
    bool swept_parallel = false;
    // Concurrent sweep: chunks are claimed by pool runners and united
    // through a lock-free forest. The closure partition is the
    // connectivity closure of the match pairs — invariant to both
    // sweep order and thread interleaving — so the induced graph is
    // bit-identical to the serial sweep's (property-tested). Gated on
    // NullProbe: instrumented probes record per-access traffic and
    // must observe the serial access order.
    if constexpr (std::is_same_v<Probe, core::NullProbe>) {
        const unsigned tc_threads = core::clampThreads(options.threads);
        if (tc_threads > 1 && total > 1) {
            core::ConcurrentUnionFind shared(total);
            const uint64_t n_chunks = (total + chunk - 1) / chunk;
            core::parallelFor(
                0, n_chunks, tc_threads,
                [&](size_t chunk_index) {
                    const uint64_t lo = chunk_index * chunk;
                    const uint64_t hi =
                        std::min<uint64_t>(total, lo + chunk);
                    tree.visitOverlaps(
                        lo, hi, [&](const core::Interval &iv) {
                            const MatchSegment match =
                                matchAt(iv.value >> 1);
                            const bool b_side = (iv.value & 1) != 0;
                            const uint64_t self =
                                b_side ? match.bStart : match.aStart;
                            const uint64_t other =
                                b_side ? match.aStart : match.bStart;
                            const uint64_t from =
                                std::max(iv.start, lo);
                            const uint64_t to = std::min(iv.end, hi);
                            for (uint64_t p = from; p < to; ++p)
                                shared.unite(p, other + (p - self));
                        });
                });
            result.sweeps += n_chunks;
            result.treeQueries += n_chunks;
            classes.adoptFrom(shared);
            // Every successful unite collapses exactly one set, so the
            // merge count is recoverable from the final partition.
            result.unions = total - classes.setCount();
            swept_parallel = true;
        }
    }
    for (uint64_t lo = 0; !swept_parallel && lo < total; lo += chunk) {
        const uint64_t hi = std::min<uint64_t>(total, lo + chunk);
        ++result.sweeps;
        ++result.treeQueries;
        tree.visitOverlaps(lo, hi, [&](const core::Interval &iv) {
            probe.load(store.at((iv.value >> 1) * sizeof(MatchSegment)),
                       sizeof(MatchSegment));
            const MatchSegment match = matchAt(iv.value >> 1);
            const bool b_side = (iv.value & 1) != 0;
            const uint64_t self = b_side ? match.bStart : match.aStart;
            const uint64_t other = b_side ? match.aStart : match.bStart;
            const uint64_t from = std::max(iv.start, lo);
            const uint64_t to = std::min(iv.end, hi);
            probe.op(core::OpKind::kScalar, 4);
            for (uint64_t p = from; p < to; ++p) {
                const uint64_t q = other + (p - self);
                probe.load(class_of.data() + p, sizeof(uint32_t));
                probe.load(class_of.data() + q, sizeof(uint32_t));
                const size_t before = classes.setCount();
                classes.unite(p, q);
                const bool merged = classes.setCount() != before;
                probe.branch(/* site */ 70, merged);
                if (merged) {
                    ++result.unions;
                    probe.store(class_of.data() + q, sizeof(uint32_t));
                }
            }
        });
    }
    result.closureClasses = classes.setCount();

    // ---- 4. Emission: one graph base per closure class, ordered by
    // first appearance in a forward scan of the global space. The
    // atomic "seen" set marks emitted classes by representative.
    core::AtomicBitVector seen(total);
    std::vector<uint8_t> graph_bases;
    graph_bases.reserve(result.closureClasses);
    for (uint64_t p = 0; p < total; ++p) {
        const size_t rep = classes.find(p);
        probe.load(class_of.data() + rep, sizeof(uint32_t));
        const bool fresh = seen.setIfClear(rep);
        probe.branch(/* site */ 71, fresh);
        if (fresh) {
            class_of[rep] = static_cast<uint32_t>(graph_bases.size());
            graph_bases.push_back(catalog.baseAt(p));
            probe.store(class_of.data() + rep, sizeof(uint32_t));
        }
    }

    // ---- 5. Node boundaries: a cut before any class where a path
    // starts, after any class where one ends, and around every
    // non-contiguous path transition. The runs between cuts are the
    // compacted nodes, and every path walk decomposes into whole runs.
    const auto n_classes = static_cast<uint32_t>(result.closureClasses);
    core::BitVector boundary(n_classes + 1);
    boundary.set(0);
    boundary.set(n_classes);
    const size_t n_seqs = catalog.sequenceCount();
    const auto classAt = [&classes, &class_of](uint64_t p) {
        return class_of[classes.find(p)];
    };
    for (size_t s = 0; s < n_seqs; ++s) {
        const uint64_t s_begin = catalog.start(s);
        const uint64_t s_end = catalog.end(s);
        if (s_begin == s_end)
            continue;
        uint32_t prev = classAt(s_begin);
        boundary.set(prev);
        for (uint64_t p = s_begin + 1; p < s_end; ++p) {
            const uint32_t cls = classAt(p);
            const bool jump = cls != prev + 1;
            probe.branch(/* site */ 72, jump);
            if (jump) {
                boundary.set(prev + 1);
                boundary.set(cls);
            }
            prev = cls;
        }
        boundary.set(prev + 1);
    }

    // ---- 6. Emit the compacted nodes.
    std::vector<uint32_t> node_of(n_classes);
    std::vector<uint32_t> node_begin;
    for (uint32_t c = 0; c < n_classes; ++c) {
        if (boundary.get(c))
            node_begin.push_back(c);
        node_of[c] = static_cast<uint32_t>(node_begin.size() - 1);
    }
    for (size_t k = 0; k < node_begin.size(); ++k) {
        const uint32_t node_end = k + 1 < node_begin.size()
                                      ? node_begin[k + 1]
                                      : n_classes;
        result.graph.addNode(seq::Sequence(std::vector<uint8_t>(
            graph_bases.begin() + node_begin[k],
            graph_bases.begin() + node_end)));
    }

    // ---- 7. Edges and embedded paths. Cuts guarantee each sequence
    // enters nodes at their first class and leaves at their last, so
    // its path spells it exactly.
    for (size_t s = 0; s < n_seqs; ++s) {
        const uint64_t s_begin = catalog.start(s);
        const uint64_t s_end = catalog.end(s);
        if (s_begin == s_end)
            continue;
        std::vector<graph::Handle> steps;
        uint32_t prev = kUnassigned;
        for (uint64_t p = s_begin; p < s_end; ++p) {
            const uint32_t cls = classAt(p);
            if (steps.empty() || cls != prev + 1 ||
                node_of[cls] != node_of[prev]) {
                steps.emplace_back(node_of[cls], false);
            }
            prev = cls;
        }
        for (size_t i = 0; i + 1 < steps.size(); ++i)
            result.graph.addEdge(steps[i], steps[i + 1]);
        std::string name = catalog.name(s);
        if (name.empty())
            name = "seq" + std::to_string(s);
        result.graph.addPath(std::move(name), std::move(steps));
    }
    return result;
}

} // namespace pgb::build::tcdetail

namespace pgb::build {

template <typename Probe>
TcResult
transclose(const SequenceCatalog &catalog,
           const std::vector<MatchSegment> &matches,
           const TcOptions &options, Probe &probe)
{
    return tcdetail::transcloseImpl(catalog, matches, options, probe);
}

} // namespace pgb::build

#endif // PGB_BUILD_TRANSCLOSURE_IMPL_HPP
