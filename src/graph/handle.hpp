/**
 * @file
 * Oriented node handles for bidirected sequence graphs.
 *
 * A pangenome graph is bidirected: each node can be traversed forward
 * or in reverse complement. A Handle packs (node id, orientation) into
 * 32 bits, following the convention used by libhandlegraph/vg.
 */

#ifndef PGB_GRAPH_HANDLE_HPP
#define PGB_GRAPH_HANDLE_HPP

#include <cstdint>
#include <functional>

namespace pgb::graph {

/** Dense node identifier, 0-based. */
using NodeId = uint32_t;

/** An oriented reference to a node: (id << 1) | is_reverse. */
class Handle
{
  public:
    Handle() = default;

    Handle(NodeId node, bool reverse)
        : packed_((node << 1) | (reverse ? 1u : 0u))
    {
    }

    /** Construct directly from the packed representation. */
    static Handle
    fromPacked(uint32_t packed)
    {
        Handle h;
        h.packed_ = packed;
        return h;
    }

    NodeId node() const { return packed_ >> 1; }
    bool isReverse() const { return packed_ & 1; }
    uint32_t packed() const { return packed_; }

    /** The same node in the opposite orientation. */
    Handle flipped() const { return fromPacked(packed_ ^ 1u); }

    bool operator==(const Handle &other) const
    {
        return packed_ == other.packed_;
    }
    bool operator!=(const Handle &other) const
    {
        return packed_ != other.packed_;
    }
    bool operator<(const Handle &other) const
    {
        return packed_ < other.packed_;
    }

  private:
    uint32_t packed_ = 0;
};

} // namespace pgb::graph

namespace std {

template <>
struct hash<pgb::graph::Handle>
{
    size_t
    operator()(const pgb::graph::Handle &h) const noexcept
    {
        return std::hash<uint32_t>()(h.packed());
    }
};

} // namespace std

#endif // PGB_GRAPH_HANDLE_HPP
