#include "graph/pangraph.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "core/logging.hpp"

namespace pgb::graph {

using core::fatal;

NodeId
PanGraph::addNode(seq::Sequence bases)
{
    if (bases.empty())
        fatal("PanGraph::addNode: empty node sequence");
    sequences_.push_back(std::move(bases));
    adjacency_.resize(sequences_.size() * 2);
    return static_cast<NodeId>(sequences_.size() - 1);
}

seq::Sequence
PanGraph::sequenceOf(Handle handle) const
{
    const seq::Sequence &forward = sequences_[handle.node()];
    return handle.isReverse() ? forward.reverseComplement() : forward;
}

uint8_t
PanGraph::baseAt(Handle handle, size_t offset) const
{
    const seq::Sequence &forward = sequences_[handle.node()];
    if (!handle.isReverse())
        return forward[offset];
    return seq::complementBase(forward[forward.size() - 1 - offset]);
}

void
PanGraph::addEdge(Handle from, Handle to)
{
    if (from.node() >= nodeCount() || to.node() >= nodeCount())
        fatal("PanGraph::addEdge: node out of range");
    if (hasEdge(from, to))
        return;
    adjacency_[from.packed()].push_back(to);
    // Bidirected mirror: traversing the edge in the opposite direction.
    const Handle mirror_from = to.flipped();
    const Handle mirror_to = from.flipped();
    if (!(mirror_from == from && mirror_to == to))
        adjacency_[mirror_from.packed()].push_back(mirror_to);
    ++edgeCount_;
}

bool
PanGraph::hasEdge(Handle from, Handle to) const
{
    const auto &out = adjacency_[from.packed()];
    return std::find(out.begin(), out.end(), to) != out.end();
}

std::vector<Handle>
PanGraph::predecessors(Handle handle) const
{
    // Predecessors of h are the flips of the successors of h.flipped().
    std::vector<Handle> preds;
    for (Handle succ : adjacency_[handle.flipped().packed()])
        preds.push_back(succ.flipped());
    return preds;
}

PathId
PanGraph::addPath(std::string name, std::vector<Handle> steps)
{
    if (steps.empty())
        fatal("PanGraph::addPath: empty path '", name, "'");
    for (size_t i = 0; i + 1 < steps.size(); ++i) {
        if (!hasEdge(steps[i], steps[i + 1])) {
            fatal("PanGraph::addPath: path '", name,
                  "' step ", i, " is not connected by an edge");
        }
    }
    if (pathIndex_.count(name) != 0)
        fatal("PanGraph::addPath: duplicate path name '", name, "'");
    paths_.push_back(std::move(steps));
    pathNames_.push_back(name);
    const auto id = static_cast<PathId>(paths_.size() - 1);
    pathIndex_.emplace(std::move(name), id);
    return id;
}

size_t
PanGraph::pathLength(PathId path) const
{
    size_t length = 0;
    for (Handle step : paths_[path])
        length += nodeLength(step.node());
    return length;
}

seq::Sequence
PanGraph::pathSequence(PathId path) const
{
    seq::Sequence out;
    out.setName(pathNames_[path]);
    for (Handle step : paths_[path])
        out.append(sequenceOf(step));
    return out;
}

GraphStats
PanGraph::stats() const
{
    GraphStats stats;
    stats.nodeCount = nodeCount();
    stats.edgeCount = edgeCount();
    stats.pathCount = pathCount();
    for (const auto &sequence : sequences_) {
        stats.totalBases += sequence.size();
        stats.maxNodeLength = std::max(stats.maxNodeLength,
                                       sequence.size());
    }
    if (stats.nodeCount > 0) {
        stats.avgNodeLength = static_cast<double>(stats.totalBases) /
                              static_cast<double>(stats.nodeCount);
        size_t out_degree = 0;
        for (const auto &adjacent : adjacency_)
            out_degree += adjacent.size();
        stats.avgOutDegree = static_cast<double>(out_degree) /
                             static_cast<double>(adjacency_.size());
    }
    return stats;
}

LocalGraph
PanGraph::extractSubgraph(Handle start, size_t radius,
                          uint32_t *origin) const
{
    // Dijkstra outward from `start` in both directions, distance in
    // bases. A handle and its flip are distinct local nodes (reverse
    // strand unrolling).
    struct Entry
    {
        size_t dist;
        uint32_t packed;
        bool operator>(const Entry &other) const
        {
            return dist > other.dist;
        }
    };
    std::unordered_map<uint32_t, size_t> dist;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
    dist[start.packed()] = 0;
    queue.push({0, start.packed()});
    std::vector<uint32_t> discovered; // in order of settling

    while (!queue.empty()) {
        const Entry entry = queue.top();
        queue.pop();
        auto it = dist.find(entry.packed);
        if (it == dist.end() || it->second < entry.dist)
            continue;
        discovered.push_back(entry.packed);
        const Handle handle = Handle::fromPacked(entry.packed);
        const size_t step = nodeLength(handle.node());

        auto relax = [&](Handle next, size_t next_dist) {
            if (next_dist > radius)
                return;
            auto found = dist.find(next.packed());
            if (found == dist.end() || next_dist < found->second) {
                dist[next.packed()] = next_dist;
                queue.push({next_dist, next.packed()});
            }
        };
        for (Handle next : successors(handle))
            relax(next, entry.dist + step);
        for (Handle prev : predecessors(handle))
            relax(prev, entry.dist + nodeLength(prev.node()));
    }

    // Deterministic local ids: sort settled handles by (distance, id).
    std::sort(discovered.begin(), discovered.end(),
              [&](uint32_t a, uint32_t b) {
                  const size_t da = dist[a], db = dist[b];
                  return da < db || (da == db && a < b);
              });
    std::unordered_map<uint32_t, uint32_t> local;
    LocalGraph out;
    for (uint32_t packed : discovered) {
        const Handle handle = Handle::fromPacked(packed);
        local[packed] = out.addNode(sequenceOf(handle).codes());
    }

    // Keep only edges that do not create cycles: an edge u->v survives
    // when it respects the (distance, id) order, or when v is farther
    // out. This DAG-ification mirrors vg's acyclic extraction for GSSW.
    for (uint32_t packed : discovered) {
        const Handle handle = Handle::fromPacked(packed);
        for (Handle next : successors(handle)) {
            auto it = local.find(next.packed());
            if (it == local.end())
                continue;
            const uint32_t from = local[packed];
            const uint32_t to = it->second;
            if (from < to)
                out.addEdge(from, to);
        }
    }
    out.finalize();
    if (origin != nullptr)
        *origin = local[start.packed()];
    return out;
}

PanGraph
PanGraph::splitNodes(size_t max_length) const
{
    if (max_length == 0)
        fatal("PanGraph::splitNodes: max_length must be positive");
    PanGraph out;
    std::vector<NodeId> first(nodeCount());
    std::vector<NodeId> last(nodeCount());
    for (NodeId node = 0; node < nodeCount(); ++node) {
        const seq::Sequence &bases = sequences_[node];
        NodeId prev = 0;
        bool have_prev = false;
        for (size_t offset = 0; offset < bases.size();
             offset += max_length) {
            const NodeId id = out.addNode(
                bases.slice(offset, max_length));
            if (!have_prev)
                first[node] = id;
            else
                out.addEdge(Handle(prev, false), Handle(id, false));
            prev = id;
            have_prev = true;
        }
        last[node] = prev;
    }

    auto entry_of = [&](Handle h) {
        return h.isReverse() ? Handle(last[h.node()], true)
                             : Handle(first[h.node()], false);
    };
    auto exit_of = [&](Handle h) {
        return h.isReverse() ? Handle(first[h.node()], true)
                             : Handle(last[h.node()], false);
    };

    for (NodeId node = 0; node < nodeCount(); ++node) {
        for (bool reverse : {false, true}) {
            const Handle handle(node, reverse);
            for (Handle next : successors(handle))
                out.addEdge(exit_of(handle), entry_of(next));
        }
    }

    for (PathId path = 0; path < pathCount(); ++path) {
        std::vector<Handle> steps;
        for (Handle step : paths_[path]) {
            const NodeId node = step.node();
            if (!step.isReverse()) {
                for (NodeId sub = first[node]; sub <= last[node]; ++sub)
                    steps.emplace_back(sub, false);
            } else {
                for (NodeId sub = last[node] + 1; sub-- > first[node];)
                    steps.emplace_back(sub, true);
            }
        }
        out.addPath(pathNames_[path], std::move(steps));
    }
    return out;
}

size_t
PanGraph::shortestPathBases(Handle from, Handle to, size_t limit) const
{
    struct Entry
    {
        size_t dist;
        uint32_t packed;
        bool operator>(const Entry &other) const
        {
            return dist > other.dist;
        }
    };
    std::unordered_map<uint32_t, size_t> dist;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
    for (Handle succ : successors(from)) {
        dist[succ.packed()] = 0;
        queue.push({0, succ.packed()});
    }
    while (!queue.empty()) {
        const Entry entry = queue.top();
        queue.pop();
        auto it = dist.find(entry.packed);
        if (it == dist.end() || it->second < entry.dist)
            continue;
        const Handle handle = Handle::fromPacked(entry.packed);
        if (handle == to)
            return entry.dist;
        const size_t next_dist = entry.dist + nodeLength(handle.node());
        if (next_dist > limit)
            continue;
        for (Handle next : successors(handle)) {
            auto found = dist.find(next.packed());
            if (found == dist.end() || next_dist < found->second) {
                dist[next.packed()] = next_dist;
                queue.push({next_dist, next.packed()});
            }
        }
    }
    return std::numeric_limits<size_t>::max();
}

PanGraph
PanGraph::restore(std::vector<seq::Sequence> sequences,
                  std::vector<std::vector<Handle>> adjacency,
                  size_t edge_count,
                  std::vector<std::vector<Handle>> paths,
                  std::vector<std::string> path_names)
{
    PanGraph graph;
    if (adjacency.size() != sequences.size() * 2)
        core::panic("PanGraph::restore: adjacency size mismatch");
    if (paths.size() != path_names.size())
        core::panic("PanGraph::restore: path name count mismatch");
    graph.sequences_ = std::move(sequences);
    graph.adjacency_ = std::move(adjacency);
    graph.edgeCount_ = edge_count;
    graph.paths_ = std::move(paths);
    graph.pathNames_ = std::move(path_names);
    for (PathId p = 0; p < graph.pathNames_.size(); ++p)
        graph.pathIndex_.emplace(graph.pathNames_[p], p);
    return graph;
}

} // namespace pgb::graph
