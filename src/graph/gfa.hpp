/**
 * @file
 * GFA v1 serialization for PanGraph.
 *
 * Supports the subset of GFA used by pangenome tools: S (segment),
 * L (link, blunt 0M overlaps only), and P (path) records. Segment names
 * may be arbitrary strings on input; output uses 1-based numeric names.
 *
 * Parse errors carry the source label (file path or "GFA") and the
 * 1-based line number; core::ParseOptions::lenient skips malformed
 * records with a warning instead (counted in core::ParseStats). File
 * output goes through core::CheckedWriter, so a full disk or an
 * unwritable path is a catchable FatalError, not a silent truncation.
 */

#ifndef PGB_GRAPH_GFA_HPP
#define PGB_GRAPH_GFA_HPP

#include <iosfwd>
#include <string>

#include "core/parse.hpp"
#include "graph/pangraph.hpp"

namespace pgb::graph {

/** Parse a GFA v1 graph from @p input. */
PanGraph readGfa(std::istream &input,
                 const core::ParseOptions &options = {},
                 core::ParseStats *stats = nullptr);

/** Parse a GFA v1 graph from the file at @p path. */
PanGraph readGfaFile(const std::string &path,
                     const core::ParseOptions &options = {},
                     core::ParseStats *stats = nullptr);

/** Serialize @p graph as GFA v1. */
void writeGfa(std::ostream &output, const PanGraph &graph);

/** Serialize @p graph to the file at @p path (checked write). */
void writeGfaFile(const std::string &path, const PanGraph &graph);

} // namespace pgb::graph

#endif // PGB_GRAPH_GFA_HPP
