#include "graph/gfa.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/io.hpp"
#include "core/logging.hpp"
#include "seq/alphabet.hpp"

namespace pgb::graph {

using core::fatal;

namespace {

std::vector<std::string>
splitTabs(const std::string &line)
{
    std::vector<std::string> fields;
    size_t start = 0;
    for (;;) {
        const size_t tab = line.find('\t', start);
        if (tab == std::string::npos) {
            fields.push_back(line.substr(start));
            return fields;
        }
        fields.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
}

/** Index of the first character outside ACGTNacgtn, or npos. */
size_t
firstInvalidBase(const std::string &bases)
{
    for (size_t i = 0; i < bases.size(); ++i) {
        const char c = bases[i];
        if (seq::encodeBase(c) == seq::kBaseN && c != 'N' && c != 'n')
            return i;
    }
    return std::string::npos;
}

PanGraph
readGfaImpl(std::istream &input, const std::string &label,
            const core::ParseOptions &options, core::ParseStats *stats)
{
    PanGraph graph;
    core::ParseErrors errors{label, options};
    std::unordered_map<std::string, NodeId> names;
    struct PendingLink
    {
        std::string from, to;
        bool fromRev, toRev;
        size_t line;
    };
    std::vector<PendingLink> links;
    struct PendingPath
    {
        std::string name;
        std::string steps;
        size_t line;
    };
    std::vector<PendingPath> pending_paths;
    std::unordered_set<std::string> path_names;
    size_t kept = 0;

    std::string line;
    size_t line_no = 0;
    while (std::getline(input, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;
        const auto fields = splitTabs(line);
        switch (fields[0].empty() ? '\0' : fields[0][0]) {
          case 'H':
            break;
          case 'S': {
            if (fields.size() < 3 || fields[1].empty()) {
                if (errors.bad(line_no, "S record needs name and "
                                        "sequence"))
                    continue;
            }
            if (names.count(fields[1]) != 0) {
                if (errors.bad(line_no, "duplicate segment '",
                               fields[1], "'"))
                    continue;
            }
            if (fields[2].empty() || fields[2] == "*") {
                if (errors.bad(line_no, "segment '", fields[1],
                               "' has no sequence"))
                    continue;
            }
            const size_t invalid = firstInvalidBase(fields[2]);
            if (invalid != std::string::npos) {
                if (errors.bad(line_no, "non-ACGTN character '",
                               fields[2][invalid], "' in segment '",
                               fields[1], "'"))
                    continue;
            }
            names[fields[1]] =
                graph.addNode(seq::Sequence(fields[1], fields[2]));
            ++kept;
            break;
          }
          case 'L': {
            if (fields.size() < 5) {
                if (errors.bad(line_no, "L record needs 4 fields"))
                    continue;
            }
            if (fields[2] != "+" && fields[2] != "-") {
                if (errors.bad(line_no, "bad L orientation '",
                               fields[2], "'"))
                    continue;
            }
            if (fields[4] != "+" && fields[4] != "-") {
                if (errors.bad(line_no, "bad L orientation '",
                               fields[4], "'"))
                    continue;
            }
            links.push_back({fields[1], fields[3], fields[2] == "-",
                             fields[4] == "-", line_no});
            break;
          }
          case 'P': {
            if (fields.size() < 3 || fields[1].empty() ||
                fields[2].empty()) {
                if (errors.bad(line_no, "P record needs name and steps"))
                    continue;
            }
            pending_paths.push_back({fields[1], fields[2], line_no});
            break;
          }
          default:
            // Ignore record types we do not model (C, W, tags...).
            break;
        }
    }

    if (names.empty()) {
        if (!options.lenient)
            fatal(label, ": empty input (no segments)");
        core::warn(label, ": empty input (no segments)");
    }

    for (const auto &link : links) {
        const auto from = names.find(link.from);
        const auto to = names.find(link.to);
        if (from == names.end() || to == names.end()) {
            const std::string &missing =
                from == names.end() ? link.from : link.to;
            if (errors.bad(link.line, "unknown segment '", missing,
                           "' in L record"))
                continue;
        }
        graph.addEdge(Handle(from->second, link.fromRev),
                      Handle(to->second, link.toRev));
        ++kept;
    }

    for (const auto &path : pending_paths) {
        std::vector<Handle> steps;
        std::stringstream stream(path.steps);
        std::string token;
        bool dropped = false;
        while (!dropped && std::getline(stream, token, ',')) {
            if (token.size() < 2) {
                dropped = errors.bad(path.line, "malformed oriented "
                                     "segment '", token, "' in path '",
                                     path.name, "'");
                continue;
            }
            const char orient = token.back();
            if (orient != '+' && orient != '-') {
                dropped = errors.bad(path.line, "bad orientation in '",
                                     token, "' in path '", path.name,
                                     "'");
                continue;
            }
            const std::string name = token.substr(0, token.size() - 1);
            const auto it = names.find(name);
            if (it == names.end()) {
                dropped = errors.bad(path.line, "unknown segment '",
                                     name, "' in path '", path.name,
                                     "'");
                continue;
            }
            steps.emplace_back(it->second, orient == '-');
        }
        if (dropped)
            continue;
        if (steps.empty()) {
            if (errors.bad(path.line, "path '", path.name,
                           "' has no steps"))
                continue;
        }
        // Pre-validate what addPath would reject, so path errors carry
        // the P record's line number instead of a deep internal one.
        if (path_names.count(path.name) != 0) {
            if (errors.bad(path.line, "duplicate path '", path.name,
                           "'"))
                continue;
        }
        bool connected = true;
        for (size_t i = 0; connected && i + 1 < steps.size(); ++i) {
            if (!graph.hasEdge(steps[i], steps[i + 1])) {
                connected = !errors.bad(
                    path.line, "path '", path.name, "' step ", i,
                    " is not connected by a link");
            }
        }
        if (!connected)
            continue;
        path_names.insert(path.name);
        graph.addPath(path.name, std::move(steps));
        ++kept;
    }

    if (stats != nullptr) {
        stats->records = kept;
        stats->skipped = errors.skipped;
    }
    return graph;
}

} // namespace

PanGraph
readGfa(std::istream &input, const core::ParseOptions &options,
        core::ParseStats *stats)
{
    return readGfaImpl(input, "GFA", options, stats);
}

PanGraph
readGfaFile(const std::string &path, const core::ParseOptions &options,
            core::ParseStats *stats)
{
    std::ifstream input(path);
    if (!input)
        fatal("GFA: cannot open '", path, "'");
    return readGfaImpl(input, path, options, stats);
}

void
writeGfa(std::ostream &output, const PanGraph &graph)
{
    output << "H\tVN:Z:1.0\n";
    for (NodeId node = 0; node < graph.nodeCount(); ++node) {
        output << "S\t" << (node + 1) << '\t'
               << graph.nodeSequence(node).toString() << '\n';
    }
    // Emit each bidirected edge once, from its canonical orientation.
    for (NodeId node = 0; node < graph.nodeCount(); ++node) {
        for (bool reverse : {false, true}) {
            const Handle from(node, reverse);
            for (Handle to : graph.successors(from)) {
                // Canonical form: emit when (from, to) <= its mirror.
                const Handle mirror_from = to.flipped();
                const Handle mirror_to = from.flipped();
                const auto key = std::make_pair(from.packed(), to.packed());
                const auto mirror_key = std::make_pair(
                    mirror_from.packed(), mirror_to.packed());
                if (key > mirror_key)
                    continue;
                output << "L\t" << (from.node() + 1) << '\t'
                       << (from.isReverse() ? '-' : '+') << '\t'
                       << (to.node() + 1) << '\t'
                       << (to.isReverse() ? '-' : '+') << "\t0M\n";
            }
        }
    }
    for (PathId path = 0; path < graph.pathCount(); ++path) {
        output << "P\t" << graph.pathName(path) << '\t';
        const auto &steps = graph.pathSteps(path);
        for (size_t i = 0; i < steps.size(); ++i) {
            if (i != 0)
                output << ',';
            output << (steps[i].node() + 1)
                   << (steps[i].isReverse() ? '-' : '+');
        }
        output << "\t*\n";
    }
}

void
writeGfaFile(const std::string &path, const PanGraph &graph)
{
    core::CheckedWriter out(path);
    writeGfa(out.stream(), graph);
    out.finish();
}

} // namespace pgb::graph
