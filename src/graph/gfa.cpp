#include "graph/gfa.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "core/logging.hpp"

namespace pgb::graph {

using core::fatal;

namespace {

std::vector<std::string>
splitTabs(const std::string &line)
{
    std::vector<std::string> fields;
    size_t start = 0;
    for (;;) {
        const size_t tab = line.find('\t', start);
        if (tab == std::string::npos) {
            fields.push_back(line.substr(start));
            return fields;
        }
        fields.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
}

/** Parse "name+" / "name-" into (name, reverse). */
std::pair<std::string, bool>
parseOriented(const std::string &token)
{
    if (token.size() < 2)
        fatal("GFA: malformed oriented segment '", token, "'");
    const char orient = token.back();
    if (orient != '+' && orient != '-')
        fatal("GFA: bad orientation in '", token, "'");
    return {token.substr(0, token.size() - 1), orient == '-'};
}

} // namespace

PanGraph
readGfa(std::istream &input)
{
    PanGraph graph;
    std::unordered_map<std::string, NodeId> names;
    struct PendingLink
    {
        std::string from, to;
        bool fromRev, toRev;
    };
    std::vector<PendingLink> links;
    struct PendingPath
    {
        std::string name;
        std::string steps;
    };
    std::vector<PendingPath> pending_paths;

    std::string line;
    while (std::getline(input, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        const auto fields = splitTabs(line);
        switch (fields[0].empty() ? '\0' : fields[0][0]) {
          case 'H':
            break;
          case 'S': {
            if (fields.size() < 3)
                fatal("GFA: S record needs name and sequence");
            if (names.count(fields[1]) != 0)
                fatal("GFA: duplicate segment '", fields[1], "'");
            names[fields[1]] =
                graph.addNode(seq::Sequence(fields[1], fields[2]));
            break;
          }
          case 'L': {
            if (fields.size() < 5)
                fatal("GFA: L record needs 4 fields");
            links.push_back({fields[1], fields[3],
                             fields[2] == "-", fields[4] == "-"});
            if (fields[2] != "+" && fields[2] != "-")
                fatal("GFA: bad L orientation '", fields[2], "'");
            if (fields[4] != "+" && fields[4] != "-")
                fatal("GFA: bad L orientation '", fields[4], "'");
            break;
          }
          case 'P': {
            if (fields.size() < 3)
                fatal("GFA: P record needs name and steps");
            pending_paths.push_back({fields[1], fields[2]});
            break;
          }
          default:
            // Ignore record types we do not model (C, W, tags...).
            break;
        }
    }

    auto lookup = [&](const std::string &name) {
        auto it = names.find(name);
        if (it == names.end())
            fatal("GFA: unknown segment '", name, "'");
        return it->second;
    };

    for (const auto &link : links) {
        graph.addEdge(Handle(lookup(link.from), link.fromRev),
                      Handle(lookup(link.to), link.toRev));
    }

    for (const auto &path : pending_paths) {
        std::vector<Handle> steps;
        std::stringstream stream(path.steps);
        std::string token;
        while (std::getline(stream, token, ',')) {
            const auto [name, reverse] = parseOriented(token);
            steps.emplace_back(lookup(name), reverse);
        }
        graph.addPath(path.name, std::move(steps));
    }
    return graph;
}

PanGraph
readGfaFile(const std::string &path)
{
    std::ifstream input(path);
    if (!input)
        fatal("GFA: cannot open '", path, "'");
    return readGfa(input);
}

void
writeGfa(std::ostream &output, const PanGraph &graph)
{
    output << "H\tVN:Z:1.0\n";
    for (NodeId node = 0; node < graph.nodeCount(); ++node) {
        output << "S\t" << (node + 1) << '\t'
               << graph.nodeSequence(node).toString() << '\n';
    }
    // Emit each bidirected edge once, from its canonical orientation.
    for (NodeId node = 0; node < graph.nodeCount(); ++node) {
        for (bool reverse : {false, true}) {
            const Handle from(node, reverse);
            for (Handle to : graph.successors(from)) {
                // Canonical form: emit when (from, to) <= its mirror.
                const Handle mirror_from = to.flipped();
                const Handle mirror_to = from.flipped();
                const auto key = std::make_pair(from.packed(), to.packed());
                const auto mirror_key = std::make_pair(
                    mirror_from.packed(), mirror_to.packed());
                if (key > mirror_key)
                    continue;
                output << "L\t" << (from.node() + 1) << '\t'
                       << (from.isReverse() ? '-' : '+') << '\t'
                       << (to.node() + 1) << '\t'
                       << (to.isReverse() ? '-' : '+') << "\t0M\n";
            }
        }
    }
    for (PathId path = 0; path < graph.pathCount(); ++path) {
        output << "P\t" << graph.pathName(path) << '\t';
        const auto &steps = graph.pathSteps(path);
        for (size_t i = 0; i < steps.size(); ++i) {
            if (i != 0)
                output << ',';
            output << (steps[i].node() + 1)
                   << (steps[i].isReverse() ? '-' : '+');
        }
        output << "\t*\n";
    }
}

void
writeGfaFile(const std::string &path, const PanGraph &graph)
{
    std::ofstream output(path);
    if (!output)
        fatal("GFA: cannot open '", path, "' for writing");
    writeGfa(output, graph);
}

} // namespace pgb::graph
