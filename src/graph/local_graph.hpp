/**
 * @file
 * LocalGraph: the kernel-facing oriented sequence graph.
 *
 * Mapping kernels (GSSW, GBV, GWFA) do not run on the whole bidirected
 * pangenome; they run on small oriented subgraphs extracted around seed
 * hits (a key finding of the paper: these subgraphs are cache-friendly).
 * LocalGraph is that extracted form: orientation is already resolved
 * into node sequences, adjacency is CSR, and a topological order is
 * available when the graph is acyclic.
 */

#ifndef PGB_GRAPH_LOCAL_GRAPH_HPP
#define PGB_GRAPH_LOCAL_GRAPH_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pgb::graph {

/** Oriented sequence graph in CSR form. Build, then finalize(). */
class LocalGraph
{
  public:
    /** Add a node with encoded @p bases. @return its index. */
    uint32_t addNode(std::vector<uint8_t> bases);

    /** Convenience: add a node from an ASCII string. */
    uint32_t addNode(const std::string &bases);

    /** Add a directed edge @p from -> @p to. */
    void addEdge(uint32_t from, uint32_t to);

    /**
     * Freeze the topology: build CSR adjacency, predecessor lists, and
     * (when acyclic) a topological order. Must be called before any
     * query; edges added afterwards require re-finalizing.
     */
    void finalize();

    size_t nodeCount() const { return seqs_.size(); }
    size_t edgeCount() const { return edges_.size(); }

    const std::vector<uint8_t> &nodeSeq(uint32_t node) const
    {
        return seqs_[node];
    }
    size_t nodeLength(uint32_t node) const { return seqs_[node].size(); }

    /** Total bases across all nodes. */
    size_t totalBases() const { return totalBases_; }

    std::span<const uint32_t>
    successors(uint32_t node) const
    {
        return {adjTargets_.data() + adjOffsets_[node],
                adjOffsets_[node + 1] - adjOffsets_[node]};
    }

    std::span<const uint32_t>
    predecessors(uint32_t node) const
    {
        return {predTargets_.data() + predOffsets_[node],
                predOffsets_[node + 1] - predOffsets_[node]};
    }

    /** Whether the graph is a DAG (valid after finalize()). */
    bool isDag() const { return isDag_; }

    /**
     * Topological order (node indices). Valid only when isDag(); empty
     * otherwise.
     */
    const std::vector<uint32_t> &topoOrder() const { return topoOrder_; }

    /**
     * Expand into an equivalent graph whose nodes all carry exactly one
     * base, as GraphAligner does before bit-vector alignment (GBV rows
     * are one-base nodes, paper Figure 4b). Preserves cycles.
     *
     * @param[out] first_base optional map from original node index to
     *        the index of its first base node in the result.
     */
    LocalGraph splitTo1bp(std::vector<uint32_t> *first_base = nullptr) const;

  private:
    std::vector<std::vector<uint8_t>> seqs_;
    std::vector<std::pair<uint32_t, uint32_t>> edges_;

    std::vector<uint32_t> adjOffsets_, adjTargets_;
    std::vector<uint32_t> predOffsets_, predTargets_;
    std::vector<uint32_t> topoOrder_;
    size_t totalBases_ = 0;
    bool isDag_ = false;
    bool finalized_ = false;
};

} // namespace pgb::graph

#endif // PGB_GRAPH_LOCAL_GRAPH_HPP
