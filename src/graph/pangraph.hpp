/**
 * @file
 * Bidirected pangenome sequence graph with embedded paths.
 *
 * Nodes carry DNA subsequences; directed bidirected edges connect
 * oriented node ends; named paths (haplotypes) are walks through the
 * graph. This is the reference structure every mapping kernel consumes
 * and every graph-building kernel produces (paper Figure 1.1).
 */

#ifndef PGB_GRAPH_PANGRAPH_HPP
#define PGB_GRAPH_PANGRAPH_HPP

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/handle.hpp"
#include "graph/local_graph.hpp"
#include "seq/sequence.hpp"

namespace pgb::graph {

/** Dense path identifier. */
using PathId = uint32_t;

/** Summary statistics of a graph (paper §6.2 discusses their impact). */
struct GraphStats
{
    size_t nodeCount = 0;
    size_t edgeCount = 0;
    size_t pathCount = 0;
    size_t totalBases = 0;
    double avgNodeLength = 0.0;
    size_t maxNodeLength = 0;
    double avgOutDegree = 0.0;
};

/**
 * Bidirected sequence graph.
 *
 * Edges are stored per oriented handle: an edge (a, b) means a walk may
 * leave handle a and enter handle b; the mirror edge (b.flipped(),
 * a.flipped()) is maintained automatically.
 */
class PanGraph
{
  public:
    /** Add a node carrying @p bases. @return its id. */
    NodeId addNode(seq::Sequence bases);

    /** Number of nodes. */
    size_t nodeCount() const { return sequences_.size(); }

    /** Number of distinct bidirected edges. */
    size_t edgeCount() const { return edgeCount_; }

    /** Length in bases of node @p node. */
    size_t
    nodeLength(NodeId node) const
    {
        return sequences_[node].size();
    }

    /** Forward-orientation sequence of node @p node. */
    const seq::Sequence &nodeSequence(NodeId node) const
    {
        return sequences_[node];
    }

    /** Sequence of @p handle in its orientation. */
    seq::Sequence sequenceOf(Handle handle) const;

    /** Base at offset @p offset along @p handle (orientation applied). */
    uint8_t baseAt(Handle handle, size_t offset) const;

    /** Add edge @p from -> @p to (and its bidirected mirror). */
    void addEdge(Handle from, Handle to);

    /** Whether the edge @p from -> @p to exists. */
    bool hasEdge(Handle from, Handle to) const;

    /** Handles reachable by one edge from @p handle. */
    const std::vector<Handle> &successors(Handle handle) const
    {
        return adjacency_[handle.packed()];
    }

    /** Handles with an edge into @p handle. */
    std::vector<Handle> predecessors(Handle handle) const;

    /**
     * Register a named path (haplotype walk). Consecutive steps must be
     * connected by edges; violations are fatal().
     * @return the path id.
     */
    PathId addPath(std::string name, std::vector<Handle> steps);

    size_t pathCount() const { return paths_.size(); }
    const std::string &pathName(PathId path) const
    {
        return pathNames_[path];
    }
    const std::vector<Handle> &pathSteps(PathId path) const
    {
        return paths_[path];
    }

    /** Length in bases of path @p path. */
    size_t pathLength(PathId path) const;

    /** Concatenated sequence spelled by path @p path. */
    seq::Sequence pathSequence(PathId path) const;

    /** Summary statistics. */
    GraphStats stats() const;

    /**
     * Extract the local neighborhood around (@p start, @p offset):
     * every position reachable within @p radius bases forward and
     * backward. Back edges that would create cycles with respect to the
     * BFS discovery order are dropped so the result is a DAG, mirroring
     * vg's acyclic subgraph extraction for GSSW.
     *
     * @param[out] origin index in the returned LocalGraph of @p start.
     */
    LocalGraph extractSubgraph(Handle start, size_t radius,
                               uint32_t *origin = nullptr) const;

    /**
     * Split every node longer than @p max_length into a chain of nodes
     * of at most @p max_length bases (the paper's Split-M-Graph
     * transform, §6.2). Paths and edges are rewritten accordingly.
     * @return the transformed graph.
     */
    PanGraph splitNodes(size_t max_length) const;

    /**
     * Shortest path distance in bases from the end of @p from to the
     * start of @p to, bounded by @p limit (returns SIZE_MAX if farther
     * or unreachable). Used by graph-aware chaining.
     */
    size_t shortestPathBases(Handle from, Handle to, size_t limit) const;

    /**
     * Reconstruct a graph directly from its serialized parts
     * (pgb::store artifact loading). The inputs must come from a
     * previously serialized graph: no edge mirroring, connectivity
     * validation, or dedup runs, so restoring is one linear pass and
     * the restored graph is bit-identical to the one written
     * (node ids, adjacency order, and path order all preserved).
     * Structural violations are panic()s, not fatal()s — the store
     * layer checksums sections before calling.
     */
    static PanGraph restore(std::vector<seq::Sequence> sequences,
                            std::vector<std::vector<Handle>> adjacency,
                            size_t edge_count,
                            std::vector<std::vector<Handle>> paths,
                            std::vector<std::string> path_names);

  private:
    std::vector<seq::Sequence> sequences_;
    /// adjacency_[handle.packed()] = successor handles
    std::vector<std::vector<Handle>> adjacency_;
    size_t edgeCount_ = 0;

    std::vector<std::vector<Handle>> paths_;
    std::vector<std::string> pathNames_;
    std::unordered_map<std::string, PathId> pathIndex_;
};

} // namespace pgb::graph

#endif // PGB_GRAPH_PANGRAPH_HPP
