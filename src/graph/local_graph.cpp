#include "graph/local_graph.hpp"

#include <algorithm>

#include "core/logging.hpp"
#include "seq/sequence.hpp"

namespace pgb::graph {

uint32_t
LocalGraph::addNode(std::vector<uint8_t> bases)
{
    totalBases_ += bases.size();
    seqs_.push_back(std::move(bases));
    finalized_ = false;
    return static_cast<uint32_t>(seqs_.size() - 1);
}

uint32_t
LocalGraph::addNode(const std::string &bases)
{
    return addNode(seq::encodeString(bases));
}

void
LocalGraph::addEdge(uint32_t from, uint32_t to)
{
    if (from >= seqs_.size() || to >= seqs_.size())
        core::fatal("LocalGraph::addEdge: node index out of range");
    edges_.emplace_back(from, to);
    finalized_ = false;
}

void
LocalGraph::finalize()
{
    const auto n = static_cast<uint32_t>(seqs_.size());
    std::sort(edges_.begin(), edges_.end());
    edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

    adjOffsets_.assign(n + 1, 0);
    predOffsets_.assign(n + 1, 0);
    for (const auto &[from, to] : edges_) {
        ++adjOffsets_[from + 1];
        ++predOffsets_[to + 1];
    }
    for (uint32_t i = 0; i < n; ++i) {
        adjOffsets_[i + 1] += adjOffsets_[i];
        predOffsets_[i + 1] += predOffsets_[i];
    }
    adjTargets_.resize(edges_.size());
    predTargets_.resize(edges_.size());
    std::vector<uint32_t> adj_fill(adjOffsets_.begin(),
                                   adjOffsets_.end() - 1);
    std::vector<uint32_t> pred_fill(predOffsets_.begin(),
                                    predOffsets_.end() - 1);
    for (const auto &[from, to] : edges_) {
        adjTargets_[adj_fill[from]++] = to;
        predTargets_[pred_fill[to]++] = from;
    }

    // Kahn's algorithm: topological order exists iff the graph is a DAG.
    topoOrder_.clear();
    topoOrder_.reserve(n);
    std::vector<uint32_t> indegree(n, 0);
    for (const auto &[from, to] : edges_)
        ++indegree[to];
    std::vector<uint32_t> frontier;
    for (uint32_t v = 0; v < n; ++v) {
        if (indegree[v] == 0)
            frontier.push_back(v);
    }
    // Process in ascending index order for determinism.
    size_t head = 0;
    std::sort(frontier.begin(), frontier.end());
    while (head < frontier.size()) {
        const uint32_t v = frontier[head++];
        topoOrder_.push_back(v);
        for (uint32_t child : successors(v)) {
            if (--indegree[child] == 0)
                frontier.push_back(child);
        }
    }
    isDag_ = topoOrder_.size() == n;
    if (!isDag_)
        topoOrder_.clear();
    finalized_ = true;
}

LocalGraph
LocalGraph::splitTo1bp(std::vector<uint32_t> *first_base) const
{
    if (!finalized_)
        core::panic("LocalGraph::splitTo1bp before finalize()");
    LocalGraph out;
    std::vector<uint32_t> first(seqs_.size(), 0);
    std::vector<uint32_t> last(seqs_.size(), 0);
    for (uint32_t v = 0; v < seqs_.size(); ++v) {
        const auto &bases = seqs_[v];
        if (bases.empty())
            core::fatal("LocalGraph::splitTo1bp: empty node ", v);
        uint32_t prev = 0;
        for (size_t i = 0; i < bases.size(); ++i) {
            const uint32_t id = out.addNode(
                std::vector<uint8_t>{bases[i]});
            if (i == 0)
                first[v] = id;
            else
                out.addEdge(prev, id);
            prev = id;
        }
        last[v] = prev;
    }
    for (const auto &[from, to] : edges_)
        out.addEdge(last[from], first[to]);
    out.finalize();
    if (first_base != nullptr)
        *first_base = std::move(first);
    return out;
}

} // namespace pgb::graph
