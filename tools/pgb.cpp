/**
 * @file
 * pgb: the PangenomicsBench command-line tool.
 *
 * Subcommands:
 *   simulate  generate a synthetic pangenome (GFA + haplotype FASTA +
 *             simulated reads FASTQ) — the dataset generator behind
 *             every bench (the paper ships equivalent scripts so
 *             researchers can build kernel datasets from their data)
 *   stats     print graph statistics for a GFA
 *   map       map FASTQ reads to a GFA graph with a chosen tool profile
 *   build     build a pangenome graph from FASTA assemblies (pggb/mc)
 *   layout    compute a PGSGD 2-D layout of a GFA, write TSV
 *   split     the Split-M-Graph transform (§6.2): cap node length
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/deconstruct.hpp"
#include "core/io.hpp"
#include "core/logging.hpp"
#include "core/parse.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "graph/gfa.hpp"
#include "layout/pgsgd.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "pipeline/graph_build.hpp"
#include "pipeline/mapper.hpp"
#include "seq/fasta.hpp"
#include "seq/read_sim.hpp"
#include "synth/pangenome_sim.hpp"

namespace {

using namespace pgb;

/**
 * Parse a decimal count argument, rejecting non-numeric and
 * out-of-range input instead of silently yielding 0 the way a raw
 * strtoull would ("pgb map g.gfa r.fq vgmap banana" used to run).
 */
uint64_t
parseCount(const char *text, const char *what, uint64_t min_value = 0,
           uint64_t max_value = UINT64_MAX)
{
    if (text == nullptr || *text == '\0')
        core::fatal(what, ": empty value");
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || text[0] == '-') {
        core::fatal(what, ": '", text,
                    "' is not a non-negative integer");
    }
    if (errno == ERANGE || value < min_value || value > max_value) {
        core::fatal(what, ": ", text, " is out of range [", min_value,
                    ", ", max_value, "]");
    }
    return value;
}

/** Thread-count argument: at least 1, sanity-capped. */
unsigned
parseThreads(const char *text)
{
    return static_cast<unsigned>(parseCount(text, "threads", 1, 65536));
}

/** Lenient parsing is a CLI-wide knob (PGB_LENIENT_PARSE=1). */
core::ParseOptions
cliParseOptions()
{
    core::ParseOptions options;
    const char *value = std::getenv("PGB_LENIENT_PARSE");
    options.lenient = value != nullptr && *value != '\0' &&
                      std::strcmp(value, "0") != 0;
    return options;
}

/** Report skipped records after a lenient read. */
void
reportSkipped(const char *what, const core::ParseStats &stats)
{
    if (stats.skipped > 0) {
        core::warn(what, ": skipped ", stats.skipped,
                   " malformed record(s), kept ", stats.records);
    }
}

int
usage()
{
    std::fprintf(
        stderr,
        "pgb — PangenomicsBench toolkit\n"
        "\n"
        "usage:\n"
        "  pgb simulate <out-prefix> [bases] [haplotypes] [seed]\n"
        "      writes <prefix>.gfa, <prefix>.fa, <prefix>.short.fq,\n"
        "      <prefix>.long.fq\n"
        "  pgb stats <graph.gfa>\n"
        "  pgb map <graph.gfa> <reads.fq> [vgmap|giraffe|graphaligner|"
        "minigraph] [threads]\n"
        "  pgb build <assemblies.fa> <out.gfa> [pggb|mc] [threads]\n"
        "  pgb layout <graph.gfa> <out.tsv> [iterations] [threads]\n"
        "  pgb split <in.gfa> <out.gfa> [max-node-length]\n"
        "  pgb deconstruct <graph.gfa> [ref-path-name]\n"
        "      VCF-like variant records from the graph's bubbles\n"
        "\n"
        "global options (any subcommand):\n"
        "  --metrics <out.json>  write runtime counters/gauges on exit\n"
        "  --trace <out.json>    record spans, write chrome://tracing\n"
        "                        JSON on exit\n"
        "\n"
        "environment:\n"
        "  PGB_LENIENT_PARSE=1   skip malformed input records with a\n"
        "                        warning instead of failing\n"
        "  PGB_FAULT=site[:n]    deterministic fault injection (tests)\n"
        "  PGB_METRICS=1         print a one-line metrics summary to\n"
        "                        stderr on success\n"
        "  PGB_THREADS=n         cap the worker pool size\n");
    return 2;
}

int
cmdSimulate(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    const std::string prefix = argv[0];
    const size_t bases = argc > 1
        ? parseCount(argv[1], "bases", 1000, 1ull << 40) : 100000;
    const size_t haplotypes =
        argc > 2 ? parseCount(argv[2], "haplotypes", 1, 100000) : 14;
    const uint64_t seed =
        argc > 3 ? parseCount(argv[3], "seed") : 42;

    synth::PangenomeConfig config = synth::mGraphLikeConfig(bases, seed);
    config.haplotypeCount = haplotypes;
    const auto pangenome = synth::simulatePangenome(config);

    graph::writeGfaFile(prefix + ".gfa", pangenome.graph);
    std::vector<seq::Sequence> fasta;
    fasta.push_back(pangenome.reference);
    for (const auto &hap : pangenome.haplotypes)
        fasta.push_back(hap);
    seq::writeFastaFile(prefix + ".fa", fasta);

    seq::ReadSimulator short_sim(seq::ReadProfile::shortRead(),
                                 seed ^ 0x51);
    seq::ReadProfile long_profile = seq::ReadProfile::longRead();
    long_profile.readLength = std::min<size_t>(15000, bases / 4);
    seq::ReadSimulator long_sim(long_profile, seed ^ 0x52);
    std::vector<seq::Sequence> short_reads, long_reads;
    const size_t n_short = bases / 300 * haplotypes / 4 + 50;
    const size_t n_long = bases / 30000 * haplotypes + 10;
    for (size_t r = 0; r < n_short; ++r) {
        auto read = short_sim.sample(
            pangenome.haplotypes[r % haplotypes]);
        read.read.setName("sr_" + std::to_string(r));
        short_reads.push_back(std::move(read.read));
    }
    for (size_t r = 0; r < n_long; ++r) {
        auto read =
            long_sim.sample(pangenome.haplotypes[r % haplotypes]);
        read.read.setName("lr_" + std::to_string(r));
        long_reads.push_back(std::move(read.read));
    }
    seq::writeFastqFile(prefix + ".short.fq", short_reads);
    seq::writeFastqFile(prefix + ".long.fq", long_reads);
    const auto stats = pangenome.graph.stats();
    std::printf("wrote %s.{gfa,fa,short.fq,long.fq}: %zu nodes, "
                "%zu edges, %zu paths, %zu variants, %zu short + %zu "
                "long reads\n",
                prefix.c_str(), stats.nodeCount, stats.edgeCount,
                stats.pathCount, pangenome.variants.size(),
                short_reads.size(), long_reads.size());
    return 0;
}

int
cmdStats(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    core::ParseStats parse_stats;
    const auto graph =
        graph::readGfaFile(argv[0], cliParseOptions(), &parse_stats);
    reportSkipped("stats", parse_stats);
    const auto stats = graph.stats();
    std::printf("nodes          %zu\n", stats.nodeCount);
    std::printf("edges          %zu\n", stats.edgeCount);
    std::printf("paths          %zu\n", stats.pathCount);
    std::printf("total bases    %zu\n", stats.totalBases);
    std::printf("avg node len   %.2f\n", stats.avgNodeLength);
    std::printf("max node len   %zu\n", stats.maxNodeLength);
    std::printf("avg out-degree %.3f\n", stats.avgOutDegree);
    for (graph::PathId p = 0; p < graph.pathCount(); ++p) {
        std::printf("path %-12s %zu steps, %zu bases\n",
                    graph.pathName(p).c_str(),
                    graph.pathSteps(p).size(), graph.pathLength(p));
    }
    return 0;
}

pipeline::ToolProfile
parseProfile(const char *name)
{
    const std::string s = name;
    if (s == "vgmap")
        return pipeline::ToolProfile::kVgMap;
    if (s == "giraffe")
        return pipeline::ToolProfile::kVgGiraffe;
    if (s == "graphaligner")
        return pipeline::ToolProfile::kGraphAligner;
    if (s == "minigraph")
        return pipeline::ToolProfile::kMinigraph;
    core::fatal("unknown tool profile '", s, "'");
}

int
cmdMap(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const auto parse_options = cliParseOptions();
    const auto graph = graph::readGfaFile(argv[0], parse_options);
    core::ParseStats read_stats;
    const auto reads =
        seq::readFastqFile(argv[1], parse_options, &read_stats);
    reportSkipped("map", read_stats);
    auto config = pipeline::MapperConfig::forTool(
        argc > 2 ? parseProfile(argv[2])
                 : pipeline::ToolProfile::kVgMap);
    config.threads =
        argc > 3 ? parseThreads(argv[3]) : core::hardwareThreads();

    pipeline::Seq2GraphMapper mapper(graph, config);
    core::WallTimer timer;
    const auto report = mapper.mapReads(reads);
    std::printf("%s: mapped %llu/%llu reads in %.2fs (%u threads)\n",
                pipeline::toolName(config.profile),
                static_cast<unsigned long long>(report.mappedReads),
                static_cast<unsigned long long>(report.reads),
                timer.seconds(), config.threads);
    for (const auto &[stage, secs] : report.timers.stages())
        std::printf("  %-13s %8.3fs\n", stage.c_str(), secs);
    return 0;
}

int
cmdBuild(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    core::ParseStats parse_stats;
    const auto assemblies =
        seq::readFastaFile(argv[0], cliParseOptions(), &parse_stats);
    reportSkipped("build", parse_stats);
    const bool mc = argc > 2 && std::strcmp(argv[2], "mc") == 0;
    const unsigned threads =
        argc > 3 ? parseThreads(argv[3]) : core::hardwareThreads();

    pipeline::GraphBuildReport report;
    if (mc) {
        pipeline::McParams params;
        params.threads = threads;
        report = pipeline::buildMinigraphCactus(assemblies, params);
    } else {
        pipeline::PggbParams params;
        params.threads = threads;
        report = pipeline::buildPggb(assemblies, params);
    }
    graph::writeGfaFile(argv[1], report.graph);
    const auto stats = report.graph.stats();
    std::printf("%s: %zu nodes, %zu edges, %zu paths -> %s\n",
                mc ? "minigraph-cactus" : "pggb", stats.nodeCount,
                stats.edgeCount, stats.pathCount, argv[1]);
    for (const auto &[stage, secs] : report.timers.stages())
        std::printf("  %-14s %8.3fs\n", stage.c_str(), secs);
    return 0;
}

int
cmdLayout(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const auto graph = graph::readGfaFile(argv[0], cliParseOptions());
    const uint32_t iterations = argc > 2
        ? static_cast<uint32_t>(
              parseCount(argv[2], "iterations", 1, 1u << 20))
        : 30;
    const unsigned threads =
        argc > 3 ? parseThreads(argv[3]) : core::hardwareThreads();

    layout::PathIndex index(graph);
    layout::Layout coords(graph.nodeCount(), 1);
    layout::PgsgdParams params;
    params.iterations = iterations;
    params.threads = threads;
    const auto result = layout::pgsgdLayout(index, coords, params);
    // A checked write: an unwritable path or full disk used to print
    // the success line below and exit 0 with no (or a truncated) TSV.
    core::CheckedWriter out(argv[1]);
    out.stream() << "node\tx_start\ty_start\tx_end\ty_end\n";
    for (graph::NodeId node = 0; node < graph.nodeCount(); ++node) {
        out.stream() << node << '\t'
            << coords.x(layout::Layout::startPoint(node)) << '\t'
            << coords.y(layout::Layout::startPoint(node)) << '\t'
            << coords.x(layout::Layout::endPoint(node)) << '\t'
            << coords.y(layout::Layout::endPoint(node)) << '\n';
    }
    out.finish();
    std::printf("layout: stress %.4f -> %.4f over %llu updates -> %s\n",
                result.stressBefore, result.stressAfter,
                static_cast<unsigned long long>(result.updates),
                argv[1]);
    return 0;
}

int
cmdSplit(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const auto graph = graph::readGfaFile(argv[0], cliParseOptions());
    const size_t max_len = argc > 2
        ? parseCount(argv[2], "max-node-length", 1, 1ull << 32) : 8;
    const auto split = graph.splitNodes(max_len);
    graph::writeGfaFile(argv[1], split);
    std::printf("split: avg node %.2f -> %.2f bp, %zu -> %zu nodes "
                "-> %s\n",
                graph.stats().avgNodeLength,
                split.stats().avgNodeLength, graph.nodeCount(),
                split.nodeCount(), argv[1]);
    return 0;
}

int
cmdDeconstruct(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    const auto graph = graph::readGfaFile(argv[0], cliParseOptions());
    graph::PathId ref_path = 0;
    if (argc > 1) {
        bool found = false;
        for (graph::PathId p = 0; p < graph.pathCount(); ++p) {
            if (graph.pathName(p) == argv[1]) {
                ref_path = p;
                found = true;
            }
        }
        if (!found)
            core::fatal("no path named '", argv[1], "'");
    }
    const auto variants =
        analysis::deconstructVariants(graph, ref_path);
    std::printf("#REF=%s\n#POS\tREF\tALT\tSUPPORT(ref;alts)\n",
                graph.pathName(ref_path).c_str());
    for (const auto &v : variants) {
        std::string alts, supports;
        for (size_t a = 0; a < v.altAlleles.size(); ++a) {
            if (a != 0) {
                alts += ',';
                supports += ',';
            }
            alts += v.altAlleles[a].empty() ? "-" : v.altAlleles[a];
            supports += std::to_string(v.altSupport[a]);
        }
        std::printf("%llu\t%s\t%s\t%u;%s\n",
                    static_cast<unsigned long long>(v.refPosition),
                    v.refAllele.empty() ? "-" : v.refAllele.c_str(),
                    alts.c_str(), v.refSupport, supports.c_str());
    }
    std::fprintf(stderr, "%zu variant sites\n", variants.size());
    return 0;
}

int
dispatch(const std::string &command, int argc, char **argv)
{
    if (command == "simulate")
        return cmdSimulate(argc, argv);
    if (command == "stats")
        return cmdStats(argc, argv);
    if (command == "map")
        return cmdMap(argc, argv);
    if (command == "build")
        return cmdBuild(argc, argv);
    if (command == "layout")
        return cmdLayout(argc, argv);
    if (command == "split")
        return cmdSplit(argc, argv);
    if (command == "deconstruct")
        return cmdDeconstruct(argc, argv);
    return usage();
}

/**
 * Emit the end-of-run observability artifacts. Writes go through
 * CheckedWriter, so an unwritable path or full disk fails the whole
 * run (exit 1, no partial file) even though the command succeeded —
 * a silently missing metrics file would defeat its purpose.
 */
void
writeObservability(const std::string &metrics_path,
                   const std::string &trace_path)
{
    const char *env = std::getenv("PGB_METRICS");
    const bool summarize = env != nullptr && *env != '\0' &&
                           std::strcmp(env, "0") != 0;
    if (!metrics_path.empty() || summarize) {
        const obs::Report report = obs::Report::collect();
        if (!metrics_path.empty()) {
            core::CheckedWriter out(metrics_path);
            report.write(out);
            out.finish();
        }
        if (summarize)
            std::fprintf(stderr, "%s\n", report.summaryLine().c_str());
    }
    if (!trace_path.empty()) {
        core::CheckedWriter out(trace_path);
        obs::writeTrace(out);
        out.finish();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip the global observability options before subcommand
    // dispatch so every subcommand accepts them uniformly.
    std::string command = argc > 1 ? argv[1] : "";
    try {
        std::string metrics_path;
        std::string trace_path;
        std::vector<char *> args;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--metrics" || arg == "--trace") {
                if (i + 1 >= argc)
                    core::fatal(arg, ": missing output path");
                (arg == "--metrics" ? metrics_path
                                    : trace_path) = argv[++i];
                continue;
            }
            args.push_back(argv[i]);
        }
        if (args.empty())
            return usage();
        command = args[0];
        if (!trace_path.empty())
            obs::enableTracing(true);
        const int rc = dispatch(command,
                                static_cast<int>(args.size()) - 1,
                                args.data() + 1);
        if (rc == 0)
            writeObservability(metrics_path, trace_path);
        return rc;
    } catch (const std::exception &error) {
        std::fprintf(stderr, "pgb %s: %s\n", command.c_str(),
                     error.what());
        return 1;
    } catch (...) {
        std::fprintf(stderr, "pgb %s: unknown error\n", command.c_str());
        return 1;
    }
}
