/**
 * @file
 * pgb: the PangenomicsBench command-line tool.
 *
 * Subcommands:
 *   simulate    generate a synthetic pangenome (GFA + haplotype FASTA +
 *               simulated reads FASTQ) — the dataset generator behind
 *               every bench (the paper ships equivalent scripts so
 *               researchers can build kernel datasets from their data)
 *   stats       print graph statistics for a GFA
 *   index       build mapping indexes once, write a .pgbi artifact
 *   shard       partition a pangenome by connected component into a
 *               .pgbs shard set of per-shard .pgbi artifacts
 *               (beyond-RAM mapping, DESIGN.md §13)
 *   map         map FASTQ reads to a GFA graph, a .pgbi artifact, or
 *               a .pgbs shard set with a chosen tool profile
 *   build       build a pangenome graph from FASTA assemblies (pggb/mc)
 *   layout      compute a PGSGD 2-D layout of a GFA, write TSV
 *   split       the Split-M-Graph transform (§6.2): cap node length
 *   deconstruct VCF-like variant records from the graph's bubbles
 *   serve       mapping daemon over a .pgbi artifact or .pgbs shard
 *               set (DESIGN.md §10, §13)
 *   loadgen     load generator + latency reporter for `pgb serve`
 *
 * Every subcommand parses its arguments through core::ArgParser, so
 * flags, option values, and positional counts validate identically
 * everywhere, and `pgb <cmd> --help` prints a generated usage block.
 */

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "align/dispatch.hpp"
#include "analysis/deconstruct.hpp"
#include "core/arg_parser.hpp"
#include "core/fault.hpp"
#include "core/io.hpp"
#include "core/logging.hpp"
#include "core/parse.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "graph/gfa.hpp"
#include "index/gbwt.hpp"
#include "index/minimizer.hpp"
#include "layout/pgsgd.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "pipeline/context.hpp"
#include "pipeline/graph_build.hpp"
#include "pipeline/mapper.hpp"
#include "seq/fasta.hpp"
#include "seq/read_sim.hpp"
#include "serve/loadgen.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "store/shard_build.hpp"
#include "store/store.hpp"
#include "synth/pangenome_sim.hpp"

namespace {

using namespace pgb;

/** Lenient parsing is a CLI-wide knob (PGB_LENIENT_PARSE=1). */
core::ParseOptions
cliParseOptions()
{
    core::ParseOptions options;
    const char *value = std::getenv("PGB_LENIENT_PARSE");
    options.lenient = value != nullptr && *value != '\0' &&
                      std::strcmp(value, "0") != 0;
    return options;
}

/** Report skipped records after a lenient read. */
void
reportSkipped(const char *what, const core::ParseStats &stats)
{
    if (stats.skipped > 0) {
        core::warn(what, ": skipped ", stats.skipped,
                   " malformed record(s), kept ", stats.records);
    }
}

/**
 * Thread count for a subcommand: --threads wins, then the historical
 * trailing positional, then every core.
 */
unsigned
resolveThreads(const core::ArgParser &parser, size_t positional_index)
{
    if (parser.has("--threads")) {
        return static_cast<unsigned>(
            parser.getUint("--threads", 1, 1, 65536));
    }
    return static_cast<unsigned>(parser.positionalUint(
        positional_index, "threads", core::hardwareThreads(), 1,
        65536));
}

int
usage()
{
    std::fprintf(
        stderr,
        "pgb — PangenomicsBench toolkit\n"
        "\n"
        "usage (run `pgb <command> --help` for details):\n"
        "  pgb simulate <out-prefix> [bases] [haplotypes] [seed]\n"
        "      writes <prefix>.gfa, <prefix>.fa, <prefix>.short.fq,\n"
        "      <prefix>.long.fq (--preset=repeat plants tandem arrays)\n"
        "  pgb stats <graph.gfa>\n"
        "  pgb index <graph.gfa> -o <out.pgbi> [--k K] [--w W]\n"
        "      build the mapping indexes once, write a .pgbi artifact\n"
        "      (--seeder=mem adds the FM-index sections)\n"
        "  pgb shard <graph.gfa> -o <out.pgbs> [--target-shard-mb N]\n"
        "      partition by connected component into per-shard .pgbi\n"
        "      artifacts plus a checksummed .pgbs manifest, for\n"
        "      beyond-RAM mapping (shards mmap lazily, evict under\n"
        "      --shard-cache-mb)\n"
        "  pgb map <graph.gfa> <reads.fq> [vgmap|giraffe|graphaligner|"
        "minigraph] [threads]\n"
        "  pgb map --index <art.pgbi> <reads.fq> [profile] [threads]\n"
        "  pgb map --shards <set.pgbs> <reads.fq> [profile] [threads]\n"
        "      --seeder=minimizer|mem picks the seeding backend;\n"
        "      --shard-cache-mb bounds resident shards\n"
        "  pgb build <assemblies.fa> <out.gfa> [pggb|mc] [threads]\n"
        "  pgb layout <graph.gfa> <out.tsv> [iterations] [threads]\n"
        "  pgb split <in.gfa> <out.gfa> [max-node-length]\n"
        "  pgb deconstruct <graph.gfa> [ref-path-name]\n"
        "      VCF-like variant records from the graph's bubbles\n"
        "  pgb serve (--index <art.pgbi> | --shards <set.pgbs>)\n"
        "      (--socket <path> | --stdio)\n"
        "      batching mapping daemon; SIGTERM drains and stops,\n"
        "      a second SIGTERM forces teardown, SIGHUP hot-reloads\n"
        "      the index\n"
        "  pgb loadgen --socket <path> <reads.fq> [options]\n"
        "      drive a daemon, report throughput and latency\n"
        "      (--timeout-us deadlines, --retries backoff)\n"
        "  pgb ctl --socket <path> (ping|status|reload)\n"
        "      health-check or hot-reload a running daemon\n"
        "  pgb fault-sites\n"
        "      list fault-injection sites and their recovery docs\n"
        "\n"
        "global options (any subcommand):\n"
        "  --metrics <out.json>  write runtime counters/gauges on exit\n"
        "  --trace <out.json>    record spans, write chrome://tracing\n"
        "                        JSON on exit\n"
        "\n"
        "environment:\n"
        "  PGB_LENIENT_PARSE=1   skip malformed input records with a\n"
        "                        warning instead of failing\n"
        "  PGB_FAULT=site[:n]    deterministic fault injection (tests)\n"
        "  PGB_FAULT_CHAOS=seed:p\n"
        "                        seeded random fault schedule: every\n"
        "                        site fails each hit with probability\n"
        "                        p, reproducible from the seed\n"
        "  PGB_METRICS=1         print a one-line metrics summary to\n"
        "                        stderr on success\n"
        "  PGB_THREADS=n         cap the worker pool size\n");
    return 2;
}

int
cmdSimulate(int argc, char **argv)
{
    core::ArgParser parser(
        "simulate", "<out-prefix> [bases] [haplotypes] [seed]",
        "generate a synthetic pangenome: GFA graph, haplotype FASTA, "
        "and simulated short/long read FASTQs");
    parser.option("--preset", "name",
                  "workload shape: mgraph (default) or repeat "
                  "(~35% planted tandem arrays, the seeding "
                  "stress regime)");
    if (!parser.parse(argc, argv))
        return 0;
    parser.requirePositionals(1, 4);
    const std::string prefix = parser.positional(0);
    const size_t bases =
        parser.positionalUint(1, "bases", 100000, 1000, 1ull << 40);
    const size_t haplotypes =
        parser.positionalUint(2, "haplotypes", 14, 1, 100000);
    const uint64_t seed =
        parser.positionalUint(3, "seed", 42, 0, UINT64_MAX);

    const std::string preset = parser.get("--preset", "mgraph");
    synth::PangenomeConfig config;
    if (preset == "mgraph")
        config = synth::mGraphLikeConfig(bases, seed);
    else if (preset == "repeat")
        config = synth::repeatHeavyConfig(bases, seed);
    else
        core::fatal("unknown --preset '", preset,
                    "' (expected mgraph or repeat)");
    config.haplotypeCount = haplotypes;
    const auto pangenome = synth::simulatePangenome(config);

    graph::writeGfaFile(prefix + ".gfa", pangenome.graph);
    std::vector<seq::Sequence> fasta;
    fasta.push_back(pangenome.reference);
    for (const auto &hap : pangenome.haplotypes)
        fasta.push_back(hap);
    seq::writeFastaFile(prefix + ".fa", fasta);

    seq::ReadSimulator short_sim(seq::ReadProfile::shortRead(),
                                 seed ^ 0x51);
    seq::ReadProfile long_profile = seq::ReadProfile::longRead();
    long_profile.readLength = std::min<size_t>(15000, bases / 4);
    seq::ReadSimulator long_sim(long_profile, seed ^ 0x52);
    std::vector<seq::Sequence> short_reads, long_reads;
    const size_t n_short = bases / 300 * haplotypes / 4 + 50;
    const size_t n_long = bases / 30000 * haplotypes + 10;
    for (size_t r = 0; r < n_short; ++r) {
        auto read = short_sim.sample(
            pangenome.haplotypes[r % haplotypes]);
        read.read.setName("sr_" + std::to_string(r));
        short_reads.push_back(std::move(read.read));
    }
    for (size_t r = 0; r < n_long; ++r) {
        auto read =
            long_sim.sample(pangenome.haplotypes[r % haplotypes]);
        read.read.setName("lr_" + std::to_string(r));
        long_reads.push_back(std::move(read.read));
    }
    seq::writeFastqFile(prefix + ".short.fq", short_reads);
    seq::writeFastqFile(prefix + ".long.fq", long_reads);
    const auto stats = pangenome.graph.stats();
    std::printf("wrote %s.{gfa,fa,short.fq,long.fq}: %zu nodes, "
                "%zu edges, %zu paths, %zu variants, %zu short + %zu "
                "long reads\n",
                prefix.c_str(), stats.nodeCount, stats.edgeCount,
                stats.pathCount, pangenome.variants.size(),
                short_reads.size(), long_reads.size());
    return 0;
}

int
cmdStats(int argc, char **argv)
{
    core::ArgParser parser("stats", "<graph.gfa>",
                           "print graph statistics for a GFA");
    if (!parser.parse(argc, argv))
        return 0;
    parser.requirePositionals(1, 1);
    core::ParseStats parse_stats;
    const auto graph = graph::readGfaFile(parser.positional(0),
                                          cliParseOptions(),
                                          &parse_stats);
    reportSkipped("stats", parse_stats);
    const auto stats = graph.stats();
    std::printf("nodes          %zu\n", stats.nodeCount);
    std::printf("edges          %zu\n", stats.edgeCount);
    std::printf("paths          %zu\n", stats.pathCount);
    std::printf("total bases    %zu\n", stats.totalBases);
    std::printf("avg node len   %.2f\n", stats.avgNodeLength);
    std::printf("max node len   %zu\n", stats.maxNodeLength);
    std::printf("avg out-degree %.3f\n", stats.avgOutDegree);
    for (graph::PathId p = 0; p < graph.pathCount(); ++p) {
        std::printf("path %-12s %zu steps, %zu bases\n",
                    graph.pathName(p).c_str(),
                    graph.pathSteps(p).size(), graph.pathLength(p));
    }
    return 0;
}

pipeline::ToolProfile
parseProfile(const std::string &name)
{
    if (name == "vgmap")
        return pipeline::ToolProfile::kVgMap;
    if (name == "giraffe")
        return pipeline::ToolProfile::kVgGiraffe;
    if (name == "graphaligner")
        return pipeline::ToolProfile::kGraphAligner;
    if (name == "minigraph")
        return pipeline::ToolProfile::kMinigraph;
    core::fatal("unknown tool profile '", name, "'");
}

int
cmdIndex(int argc, char **argv)
{
    core::ArgParser parser(
        "index", "<graph.gfa> -o <out.pgbi>",
        "build the minimizer index and GBWT once and write a "
        "versioned .pgbi artifact for `pgb map --index`");
    parser.option("--output", "out.pgbi",
                  "artifact output path (required)", "-o");
    parser.option("--k", "k", "minimizer length (default 15)");
    parser.option("--w", "w", "minimizer window (default 10)");
    parser.option("--seeder", "name",
                  "seeding backend the artifact should support: "
                  "minimizer (default) or mem (also builds and "
                  "persists the FM-index sections)");
    parser.option("--threads", "n",
                  "worker threads (default: all cores)");
    if (!parser.parse(argc, argv))
        return 0;
    parser.requirePositionals(1, 1);
    const std::string out_path = parser.get("--output");
    if (out_path.empty())
        core::fatal("index: missing required --output/-o <out.pgbi>");
    const auto k =
        static_cast<int>(parser.getUint("--k", 15, 4, 31));
    const auto w =
        static_cast<int>(parser.getUint("--w", 10, 1, 1024));
    const unsigned threads = parser.has("--threads")
        ? static_cast<unsigned>(parser.getUint("--threads", 1, 1, 65536))
        : core::hardwareThreads();

    core::ParseStats parse_stats;
    const auto graph = graph::readGfaFile(parser.positional(0),
                                          cliParseOptions(),
                                          &parse_stats);
    reportSkipped("index", parse_stats);

    const pipeline::SeederKind seeder =
        pipeline::parseSeeder(parser.get("--seeder", "minimizer"));

    core::WallTimer timer;
    const index::MinimizerIndex minimizers(graph, k, w, threads);
    // Always include the GBWT so the artifact serves every profile,
    // giraffe included.
    const index::GbwtIndex gbwt(graph, true, threads);
    std::unique_ptr<index::FmIndex> fm;
    if (seeder == pipeline::SeederKind::kMem)
        fm = std::make_unique<index::FmIndex>(graph);
    const double build_seconds = timer.seconds();
    store::writeArtifact(out_path, graph, minimizers, &gbwt, fm.get());

    const auto stats = graph.stats();
    std::printf("index: %zu nodes, %zu edges, %zu paths; k=%d w=%d%s; "
                "built in %.2fs -> %s\n",
                stats.nodeCount, stats.edgeCount, stats.pathCount, k,
                w, fm ? "; +FM-index" : "", build_seconds,
                out_path.c_str());
    return 0;
}

int
cmdShard(int argc, char **argv)
{
    core::ArgParser parser(
        "shard", "<graph.gfa> -o <out.pgbs>",
        "partition a pangenome by connected component into per-shard "
        ".pgbi artifacts plus a checksummed .pgbs manifest; `pgb map "
        "--shards` / `pgb serve --shards` then mmap shards lazily and "
        "keep residency under --shard-cache-mb (beyond-RAM mapping, "
        "DESIGN.md §13)");
    parser.option("--output", "out.pgbs",
                  "manifest output path (required); shard artifacts "
                  "land beside it as <stem>.shard<i>.pgbi", "-o");
    parser.option("--k", "k", "minimizer length (default 15)");
    parser.option("--w", "w", "minimizer window (default 10)");
    parser.option("--seeder", "name",
                  "seeding backend the shard set should support: "
                  "minimizer (default) or mem (adds per-shard "
                  "FM-index sections)");
    parser.option("--target-shard-mb", "mb",
                  "bin consecutive components into shards of about "
                  "this many MiB (default 256; 0 = one shard per "
                  "component)");
    parser.option("--threads", "n",
                  "worker threads (default: all cores)");
    if (!parser.parse(argc, argv))
        return 0;
    parser.requirePositionals(1, 1);
    const std::string out_path = parser.get("--output");
    if (out_path.empty())
        core::fatal("shard: missing required --output/-o <out.pgbs>");

    core::ParseStats parse_stats;
    const auto graph = graph::readGfaFile(parser.positional(0),
                                          cliParseOptions(),
                                          &parse_stats);
    reportSkipped("shard", parse_stats);

    store::ShardBuildParams params;
    params.k = static_cast<int>(parser.getUint("--k", 15, 4, 31));
    params.w = static_cast<int>(parser.getUint("--w", 10, 1, 1024));
    params.seeder = parser.get("--seeder", "minimizer");
    params.targetShardMb =
        parser.getUint("--target-shard-mb", 256, 0, 1u << 20);
    params.threads = parser.has("--threads")
        ? static_cast<unsigned>(parser.getUint("--threads", 1, 1, 65536))
        : core::hardwareThreads();

    core::WallTimer timer;
    const store::ShardManifest manifest =
        store::buildShardSet(graph, params, out_path);
    uint64_t bytes = 0;
    for (const auto &entry : manifest.shards)
        bytes += entry.bytes;
    std::printf("shard: %zu component(s) -> %zu shard(s) (%.1f MiB "
                "total), k=%d w=%d%s; built in %.2fs -> %s\n",
                manifest.components.size(), manifest.shards.size(),
                static_cast<double>(bytes) / (1024.0 * 1024.0),
                params.k, params.w,
                params.seeder == "mem" ? "; +FM-index" : "",
                timer.seconds(), out_path.c_str());
    return 0;
}

int
cmdMap(int argc, char **argv)
{
    core::ArgParser parser(
        "map",
        "(<graph.gfa> | --index <art.pgbi> | --shards <set.pgbs>) "
        "<reads.fq> [profile] [threads]",
        "map FASTQ reads to a pangenome graph; profile is one of "
        "vgmap, giraffe, graphaligner, minigraph (default vgmap)");
    parser.option("--index", "art.pgbi",
                  "map against a prebuilt artifact (pgb index) "
                  "instead of rebuilding indexes from a GFA");
    parser.option("--shards", "set.pgbs",
                  "map against a sharded pangenome (pgb shard): "
                  "shards mmap lazily on first touch, so graphs "
                  "larger than RAM map under --shard-cache-mb");
    parser.option("--shard-cache-mb", "mb",
                  "resident shard budget in MiB (default 0 = "
                  "unlimited); in-flight batches pin their shards, "
                  "so the budget is soft");
    parser.option("--threads", "n",
                  "worker threads (default: all cores)");
    parser.option("--batch", "reads",
                  "stream reads in batches of this many (default "
                  "4096), bounding memory on large FASTQs");
    parser.option("--dump", "out.tsv",
                  "write per-read mappings as TSV (name, mapped, "
                  "node, score, reverse) — comparable byte-for-byte "
                  "with `pgb loadgen --dump` output");
    parser.option("--seeder", "name",
                  "seeding backend: minimizer (default) or mem "
                  "(FM-index SMEM seeds; with --index the artifact "
                  "must have been built with --seeder=mem)");
    if (!parser.parse(argc, argv))
        return 0;

    // With --index/--shards the graph positional disappears and
    // everything shifts left: map --index art.pgbi reads.fq [profile]
    // [threads].
    const bool from_artifact = parser.has("--index");
    const bool from_shards = parser.has("--shards");
    if (from_artifact && from_shards)
        core::fatal("map: --index and --shards are mutually "
                    "exclusive (one backing store per run)");
    const size_t base = (from_artifact || from_shards) ? 0 : 1;
    parser.requirePositionals(base + 1, base + 3);
    const std::string reads_path = parser.positional(base);

    const auto parse_options = cliParseOptions();
    auto config = pipeline::MapperConfig::forTool(
        parseProfile(parser.positionalOr(base + 1,
                                         std::string("vgmap"))));
    config.threads = resolveThreads(parser, base + 2);

    const pipeline::SeederKind seeder =
        pipeline::parseSeeder(parser.get("--seeder", "minimizer"));

    graph::PanGraph graph; ///< kept alive for the in-memory context
    std::shared_ptr<const pipeline::MappingContext> context;
    if (from_artifact) {
        context = pipeline::MappingContext::Builder()
                      .fromArtifact(parser.get("--index"))
                      .seeder(seeder)
                      .build();
        // The artifact dictates the index geometry.
        config.k = context->k();
        config.w = context->w();
    } else if (from_shards) {
        context = pipeline::MappingContext::Builder()
                      .fromManifest(parser.get("--shards"))
                      .seeder(seeder)
                      .shardCacheMb(parser.getUint("--shard-cache-mb",
                                                   0, 0, 1u << 20))
                      .build();
        // The manifest dictates the index geometry.
        config.k = context->k();
        config.w = context->w();
    } else {
        graph = graph::readGfaFile(parser.positional(0), parse_options);
        context = pipeline::MappingContext::Builder()
                      .fromGraph(graph)
                      .k(config.k)
                      .w(config.w)
                      .threads(config.threads)
                      .buildGbwt(config.profile ==
                                 pipeline::ToolProfile::kVgGiraffe)
                      .seeder(seeder)
                      .build();
    }

    // Stream the FASTQ in bounded batches; aggregate one report.
    const size_t batch_size =
        parser.getUint("--batch", 4096, 1, 1u << 20);
    seq::FastqStreamReader reader(reads_path, parse_options);
    std::vector<seq::Sequence> batch;
    pipeline::MappingStats total;
    const std::string dump_path = parser.get("--dump");
    std::unique_ptr<core::CheckedWriter> dump;
    if (!dump_path.empty())
        dump = std::make_unique<core::CheckedWriter>(dump_path);
    std::vector<pipeline::ReadMapping> mappings;
    core::WallTimer timer;
    while (reader.nextBatch(batch, batch_size)) {
        pipeline::MappingStats part;
        if (dump) {
            part = pipeline::mapBatch(*context, config, batch,
                                      mappings);
            dump->stream() << serve::formatMappings(batch, mappings);
        } else {
            part = pipeline::mapBatch(*context, config, batch);
        }
        total.reads += part.reads;
        total.mappedReads += part.mappedReads;
        total.anchors += part.anchors;
        total.clusters += part.clusters;
        total.alignments += part.alignments;
        total.kernelSeconds += part.kernelSeconds;
        if (part.kernelName[0] != '\0')
            total.kernelName = part.kernelName;
        for (const auto &[stage, secs] : part.timers.stages())
            total.timers.add(stage, secs);
    }
    reportSkipped("map", reader.stats());
    if (dump)
        dump->finish();

    std::printf("%s: mapped %llu/%llu reads in %.2fs (%u threads%s)\n",
                pipeline::toolName(config.profile),
                static_cast<unsigned long long>(total.mappedReads),
                static_cast<unsigned long long>(total.reads),
                timer.seconds(), config.threads,
                from_artifact ? ", from artifact"
                              : (from_shards ? ", from shard set"
                                             : ""));
    for (const auto &[stage, secs] : total.timers.stages())
        std::printf("  %-13s %8.3fs\n", stage.c_str(), secs);
    return 0;
}

int
cmdBuild(int argc, char **argv)
{
    core::ArgParser parser(
        "build", "<assemblies.fa> <out.gfa> [pggb|mc] [threads]",
        "build a pangenome graph from FASTA assemblies with the pggb "
        "(default) or minigraph-cactus pipeline");
    parser.option("--threads", "n",
                  "worker threads (default: all cores)");
    if (!parser.parse(argc, argv))
        return 0;
    parser.requirePositionals(2, 4);
    core::ParseStats parse_stats;
    const auto assemblies = seq::readFastaFile(
        parser.positional(0), cliParseOptions(), &parse_stats);
    reportSkipped("build", parse_stats);
    const std::string tool =
        parser.positionalOr(2, std::string("pggb"));
    if (tool != "pggb" && tool != "mc")
        core::fatal("build: unknown pipeline '", tool,
                    "' (expected pggb or mc)");
    const bool mc = tool == "mc";
    const unsigned threads = resolveThreads(parser, 3);

    pipeline::GraphBuildReport report;
    if (mc) {
        pipeline::McParams params;
        params.threads = threads;
        report = pipeline::buildMinigraphCactus(assemblies, params);
    } else {
        pipeline::PggbParams params;
        params.threads = threads;
        report = pipeline::buildPggb(assemblies, params);
    }
    graph::writeGfaFile(parser.positional(1), report.graph);
    const auto stats = report.graph.stats();
    std::printf("%s: %zu nodes, %zu edges, %zu paths -> %s\n",
                mc ? "minigraph-cactus" : "pggb", stats.nodeCount,
                stats.edgeCount, stats.pathCount,
                parser.positional(1).c_str());
    for (const auto &[stage, secs] : report.timers.stages())
        std::printf("  %-14s %8.3fs\n", stage.c_str(), secs);
    return 0;
}

int
cmdLayout(int argc, char **argv)
{
    core::ArgParser parser(
        "layout", "<graph.gfa> <out.tsv> [iterations] [threads]",
        "compute a PGSGD 2-D layout of a GFA, write node coordinates "
        "as TSV");
    parser.option("--threads", "n",
                  "worker threads (default: all cores)");
    if (!parser.parse(argc, argv))
        return 0;
    parser.requirePositionals(2, 4);
    const auto graph = graph::readGfaFile(parser.positional(0),
                                          cliParseOptions());
    const auto iterations = static_cast<uint32_t>(
        parser.positionalUint(2, "iterations", 30, 1, 1u << 20));
    const unsigned threads = resolveThreads(parser, 3);

    layout::PathIndex index(graph);
    layout::Layout coords(graph.nodeCount(), 1);
    layout::PgsgdParams params;
    params.iterations = iterations;
    params.threads = threads;
    const auto result = layout::pgsgdLayout(index, coords, params);
    // A checked write: an unwritable path or full disk used to print
    // the success line below and exit 0 with no (or a truncated) TSV.
    core::CheckedWriter out(parser.positional(1));
    out.stream() << "node\tx_start\ty_start\tx_end\ty_end\n";
    for (graph::NodeId node = 0; node < graph.nodeCount(); ++node) {
        out.stream() << node << '\t'
            << coords.x(layout::Layout::startPoint(node)) << '\t'
            << coords.y(layout::Layout::startPoint(node)) << '\t'
            << coords.x(layout::Layout::endPoint(node)) << '\t'
            << coords.y(layout::Layout::endPoint(node)) << '\n';
    }
    out.finish();
    std::printf("layout: stress %.4f -> %.4f over %llu updates -> %s\n",
                result.stressBefore, result.stressAfter,
                static_cast<unsigned long long>(result.updates),
                parser.positional(1).c_str());
    return 0;
}

int
cmdSplit(int argc, char **argv)
{
    core::ArgParser parser(
        "split", "<in.gfa> <out.gfa> [max-node-length]",
        "split long nodes so none exceeds max-node-length bases "
        "(default 8), rewriting edges and paths");
    if (!parser.parse(argc, argv))
        return 0;
    parser.requirePositionals(2, 3);
    const auto graph = graph::readGfaFile(parser.positional(0),
                                          cliParseOptions());
    const size_t max_len = parser.positionalUint(
        2, "max-node-length", 8, 1, 1ull << 32);
    const auto split = graph.splitNodes(max_len);
    graph::writeGfaFile(parser.positional(1), split);
    std::printf("split: avg node %.2f -> %.2f bp, %zu -> %zu nodes "
                "-> %s\n",
                graph.stats().avgNodeLength,
                split.stats().avgNodeLength, graph.nodeCount(),
                split.nodeCount(), parser.positional(1).c_str());
    return 0;
}

int
cmdDeconstruct(int argc, char **argv)
{
    core::ArgParser parser(
        "deconstruct", "<graph.gfa> [ref-path-name]",
        "emit VCF-like variant records from the graph's bubbles "
        "against a reference path (default: the first path)");
    if (!parser.parse(argc, argv))
        return 0;
    parser.requirePositionals(1, 2);
    const auto graph = graph::readGfaFile(parser.positional(0),
                                          cliParseOptions());
    graph::PathId ref_path = 0;
    if (parser.positionalCount() > 1) {
        const std::string &name = parser.positional(1);
        bool found = false;
        for (graph::PathId p = 0; p < graph.pathCount(); ++p) {
            if (graph.pathName(p) == name) {
                ref_path = p;
                found = true;
            }
        }
        if (!found)
            core::fatal("no path named '", name, "'");
    }
    const auto variants =
        analysis::deconstructVariants(graph, ref_path);
    std::printf("#REF=%s\n#POS\tREF\tALT\tSUPPORT(ref;alts)\n",
                graph.pathName(ref_path).c_str());
    for (const auto &v : variants) {
        std::string alts, supports;
        for (size_t a = 0; a < v.altAlleles.size(); ++a) {
            if (a != 0) {
                alts += ',';
                supports += ',';
            }
            alts += v.altAlleles[a].empty() ? "-" : v.altAlleles[a];
            supports += std::to_string(v.altSupport[a]);
        }
        std::printf("%llu\t%s\t%s\t%u;%s\n",
                    static_cast<unsigned long long>(v.refPosition),
                    v.refAllele.empty() ? "-" : v.refAllele.c_str(),
                    alts.c_str(), v.refSupport, supports.c_str());
    }
    std::fprintf(stderr, "%zu variant sites\n", variants.size());
    return 0;
}

/** The daemon signal handlers may only touch atomics and make
 *  async-signal-safe calls; Server::stop()/requestReload() honor
 *  that. */
serve::Server *activeServer = nullptr;
std::atomic<int> serveSignalCount{0};
/** Socket path copied before signals are installed, so the forced
 *  teardown can unlink() it from the handler (no std::string ops). */
char serveSocketPath[108] = {0};

extern "C" void
handleServeSignal(int)
{
    if (serveSignalCount.fetch_add(1) == 0) {
        // First signal: graceful drain — stop intake, answer what was
        // admitted, exit 0.
        if (activeServer != nullptr)
            activeServer->stop();
        return;
    }
    // Second signal during the drain: the operator means NOW. Force
    // immediate teardown with only async-signal-safe calls: unlink
    // the socket so restarts do not hit EADDRINUSE, say why on
    // stderr, exit 1.
    if (serveSocketPath[0] != '\0')
        unlink(serveSocketPath);
    const char message[] =
        "serve: second signal during drain; forced teardown\n";
    const ssize_t ignored =
        write(STDERR_FILENO, message, sizeof(message) - 1);
    (void)ignored;
    _exit(1);
}

extern "C" void
handleServeHup(int)
{
    if (activeServer != nullptr)
        activeServer->requestReload();
}

int
cmdServe(int argc, char **argv)
{
    core::ArgParser parser(
        "serve",
        "(--index <art.pgbi> | --shards <set.pgbs>) "
        "(--socket <path> | --stdio)",
        "run the mapping daemon: open the artifact or shard set "
        "once, serve framed mapping requests with batching and "
        "admission control until SIGTERM (DESIGN.md §10, §13)");
    parser.option("--index", "art.pgbi",
                  "prebuilt artifact to serve (pgb index)");
    parser.option("--shards", "set.pgbs",
                  "sharded pangenome to serve (pgb shard): shards "
                  "mmap lazily, so pangenomes larger than RAM serve "
                  "under --shard-cache-mb");
    parser.option("--shard-cache-mb", "mb",
                  "resident shard budget in MiB (default 0 = "
                  "unlimited); in-flight batches pin their shards");
    parser.option("--socket", "path",
                  "Unix-domain socket path to listen on");
    parser.flag("--stdio",
                "serve one framed connection on stdin/stdout "
                "instead of a socket");
    parser.option("--profile", "name",
                  "tool profile: vgmap (default), giraffe, "
                  "graphaligner, minigraph");
    parser.option("--seeder", "name",
                  "seeding backend: minimizer (default) or mem "
                  "(the artifact must carry FM-index sections)");
    parser.option("--max-batch", "reads",
                  "batch size trigger in reads (default 256)");
    parser.option("--max-wait-us", "us",
                  "batch time trigger in microseconds (default 2000)");
    parser.option("--queue-depth", "requests",
                  "admission bound; beyond it requests are shed "
                  "with OVERLOADED (default 256)");
    parser.option("--threads", "n",
                  "mapping threads per batch (default: all cores)");
    parser.option("--stall-budget-ms", "ms",
                  "watchdog: a batch stuck in mapBatch longer than "
                  "this dumps diagnostics and exits 1 (default "
                  "20000; 0 disables)");
    if (!parser.parse(argc, argv))
        return 0;
    parser.requirePositionals(0, 0);
    const std::string index_path = parser.get("--index");
    const std::string shards_path = parser.get("--shards");
    if (index_path.empty() && shards_path.empty())
        core::fatal("serve: missing required --index <art.pgbi> or "
                    "--shards <set.pgbs>");
    if (!index_path.empty() && !shards_path.empty())
        core::fatal("serve: --index and --shards are mutually "
                    "exclusive (one backing store per daemon)");

    serve::ServeConfig config;
    config.socketPath = parser.get("--socket");
    config.stdio = parser.has("--stdio");
    if (config.stdio == !config.socketPath.empty())
        core::fatal("serve: need exactly one of --socket <path> or "
                    "--stdio");
    config.profile =
        parseProfile(parser.get("--profile", "vgmap"));
    config.seeder = pipeline::parseSeeder(
        parser.get("--seeder", "minimizer"));
    config.maxBatchReads =
        parser.getUint("--max-batch", 256, 1, 1u << 20);
    config.maxWaitUs =
        parser.getUint("--max-wait-us", 2000, 0, 60u * 1000 * 1000);
    config.queueDepth =
        parser.getUint("--queue-depth", 256, 1, 1u << 20);
    if (parser.has("--threads")) {
        config.threads = static_cast<unsigned>(
            parser.getUint("--threads", 1, 1, 65536));
    }
    config.indexPath = index_path;
    config.shardsPath = shards_path;
    config.shardCacheMb =
        parser.getUint("--shard-cache-mb", 0, 0, 1u << 20);
    config.stallBudgetMs = parser.getUint("--stall-budget-ms", 20000,
                                          0, 3600u * 1000);

    if (!config.stdio) {
        // Scripts wait for this line (or the socket file) to appear;
        // it fires from inside run() only once the bind succeeded.
        const std::string socket_path = config.socketPath;
        config.onReady = [socket_path] {
            std::fprintf(stderr, "serve: ready on %s\n",
                         socket_path.c_str());
        };
    }

    pipeline::MappingContext::Builder builder;
    if (shards_path.empty()) {
        builder.fromArtifact(index_path);
    } else {
        builder.fromManifest(shards_path)
            .shardCacheMb(config.shardCacheMb);
    }
    auto context = builder.seeder(config.seeder).build();
    serve::Server server(std::move(context), config);

    activeServer = &server;
    serveSignalCount.store(0);
    serveSocketPath[0] = '\0';
    if (!config.stdio) {
        std::strncpy(serveSocketPath, config.socketPath.c_str(),
                     sizeof(serveSocketPath) - 1);
        serveSocketPath[sizeof(serveSocketPath) - 1] = '\0';
    }
    std::signal(SIGTERM, handleServeSignal);
    std::signal(SIGINT, handleServeSignal);
    std::signal(SIGHUP, handleServeHup);
    server.run();
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGHUP, SIG_DFL);
    activeServer = nullptr;

    const serve::Server::Totals totals = server.totals();
    std::fprintf(stderr,
                 "serve: %llu connection(s), %llu request(s), "
                 "%llu response(s), %llu shed, %llu batch(es), "
                 "%llu read(s), %llu bad frame(s), "
                 "%llu deadline-exceeded, %llu reload(s) ok, "
                 "%llu reload(s) failed\n",
                 static_cast<unsigned long long>(totals.connections),
                 static_cast<unsigned long long>(totals.requests),
                 static_cast<unsigned long long>(totals.responses),
                 static_cast<unsigned long long>(totals.shed),
                 static_cast<unsigned long long>(totals.batches),
                 static_cast<unsigned long long>(totals.reads),
                 static_cast<unsigned long long>(totals.badFrames),
                 static_cast<unsigned long long>(
                     totals.deadlineExceeded),
                 static_cast<unsigned long long>(totals.reloadsOk),
                 static_cast<unsigned long long>(
                     totals.reloadsFailed));
    return 0;
}

int
cmdLoadgen(int argc, char **argv)
{
    core::ArgParser parser(
        "loadgen", "--socket <path> <reads.fq>",
        "drive a running `pgb serve` daemon with mapping requests "
        "and report throughput and client-side latency quantiles");
    parser.option("--socket", "path",
                  "daemon socket to connect to (required)");
    parser.option("--connections", "n",
                  "concurrent connections (default 1)");
    parser.option("--requests", "n",
                  "total requests; 0 (default) = one sequential pass "
                  "over the reads");
    parser.option("--reads-per-request", "n",
                  "reads bundled per request (default 1)");
    parser.option("--rate", "rps",
                  "open-loop Poisson arrival rate in requests/second "
                  "across all connections; 0 (default) = closed loop");
    parser.option("--seed", "n",
                  "schedule/sampling RNG seed (default 42)");
    parser.option("--dump", "out.tsv",
                  "write OK response bodies in request order — "
                  "comparable byte-for-byte with `pgb map --dump`");
    parser.option("--timeout-us", "us",
                  "per-request deadline budget in microseconds; the "
                  "daemon sheds lapsed requests with "
                  "DEADLINE_EXCEEDED (default 0 = none)");
    parser.option("--retries", "n",
                  "retries per request on OVERLOADED, with "
                  "exponential backoff + jitter (default 0)");
    parser.option("--retry-base-us", "us",
                  "backoff base in microseconds; doubles per attempt, "
                  "capped at 50ms (default 1000)");
    if (!parser.parse(argc, argv))
        return 0;
    parser.requirePositionals(1, 1);

    serve::LoadgenConfig config;
    config.socketPath = parser.get("--socket");
    if (config.socketPath.empty())
        core::fatal("loadgen: missing required --socket <path>");
    config.connections =
        parser.getUint("--connections", 1, 1, 4096);
    config.requests =
        parser.getUint("--requests", 0, 0, 1ull << 32);
    config.readsPerRequest =
        parser.getUint("--reads-per-request", 1, 1, 1u << 20);
    config.seed = parser.getUint("--seed", 42, 0, UINT64_MAX);
    config.dumpPath = parser.get("--dump");
    config.timeoutUs =
        parser.getUint("--timeout-us", 0, 0, 3600ull * 1000 * 1000);
    config.maxRetries = parser.getUint("--retries", 0, 0, 1000);
    config.retryBaseUs =
        parser.getUint("--retry-base-us", 1000, 1, 60ull * 1000 * 1000);
    const std::string rate_text = parser.get("--rate", "0");
    char *rate_end = nullptr;
    config.rate = std::strtod(rate_text.c_str(), &rate_end);
    if (rate_end == rate_text.c_str() || *rate_end != '\0' ||
        config.rate < 0.0) {
        core::fatal("loadgen: --rate must be a non-negative number, "
                    "got '", rate_text, "'");
    }

    core::ParseStats parse_stats;
    const auto reads = seq::readFastqFile(
        parser.positional(0), cliParseOptions(), &parse_stats);
    reportSkipped("loadgen", parse_stats);

    const serve::LoadgenReport report =
        serve::runLoadgen(config, reads);
    std::printf("loadgen: %llu sent, %llu ok, %llu overloaded, "
                "%llu error(s), %llu expired, %llu retry(ies) "
                "in %.2fs (%s)\n",
                static_cast<unsigned long long>(report.sent),
                static_cast<unsigned long long>(report.ok),
                static_cast<unsigned long long>(report.overloaded),
                static_cast<unsigned long long>(report.errors),
                static_cast<unsigned long long>(
                    report.deadlineExceeded),
                static_cast<unsigned long long>(report.retries),
                report.wallSeconds,
                config.rate > 0.0 ? "open loop" : "closed loop");
    std::printf("  throughput %10.1f ok/s\n", report.throughputRps);
    std::printf("  p50  %12.3f ms\n",
                static_cast<double>(report.p50Nanos) / 1e6);
    std::printf("  p99  %12.3f ms\n",
                static_cast<double>(report.p99Nanos) / 1e6);
    std::printf("  p999 %12.3f ms\n",
                static_cast<double>(report.p999Nanos) / 1e6);
    std::printf("  max  %12.3f ms\n",
                static_cast<double>(report.maxNanos) / 1e6);
    return 0;
}

int
cmdFaultSites(int argc, char **argv)
{
    core::ArgParser parser(
        "fault-sites", "",
        "list every registered fault-injection site with its "
        "documented recovery behavior — the PGB_FAULT / "
        "PGB_FAULT_CHAOS site catalog (DESIGN.md §6)");
    if (!parser.parse(argc, argv))
        return 0;
    parser.requirePositionals(0, 0);

    const auto sites = core::fault::siteInfos();
    size_t width = 0;
    for (const auto &site : sites)
        width = std::max(width, site.name.size());
    for (const auto &site : sites) {
        std::printf("%-*s  %s\n", static_cast<int>(width),
                    site.name.c_str(),
                    site.recovery.empty() ? "-"
                                          : site.recovery.c_str());
    }
    std::fprintf(stderr, "%zu fault site(s)\n", sites.size());
    return 0;
}

int
cmdCtl(int argc, char **argv)
{
    core::ArgParser parser(
        "ctl", "--socket <path> (ping|status|reload)",
        "send one control frame to a running daemon: ping "
        "(liveness), status (obs metrics snapshot; sharded daemons "
        "report per-shard residency as shard.<i>.resident), reload "
        "(hot-swap the .pgbi index or .pgbs shard set)");
    parser.option("--socket", "path",
                  "daemon socket to connect to (required)");
    if (!parser.parse(argc, argv))
        return 0;
    parser.requirePositionals(1, 1);
    const std::string socket_path = parser.get("--socket");
    if (socket_path.empty())
        core::fatal("ctl: missing required --socket <path>");
    const std::string verb = parser.positional(0);

    serve::MsgType type;
    if (verb == "ping")
        type = serve::MsgType::kPing;
    else if (verb == "status")
        type = serve::MsgType::kStatus;
    else if (verb == "reload")
        type = serve::MsgType::kReload;
    else
        core::fatal("ctl: unknown verb '", verb,
                    "' (want ping, status, or reload)");

    const serve::Response response =
        serve::runControl(socket_path, type);
    std::fprintf(stderr, "ctl: %s -> %s\n", verb.c_str(),
                 serve::statusName(response.status));
    if (!response.body.empty())
        std::printf("%s\n", response.body.c_str());
    return response.status == serve::Status::kOk ? 0 : 1;
}

int
dispatch(const std::string &command, int argc, char **argv)
{
    if (command == "simulate")
        return cmdSimulate(argc, argv);
    if (command == "stats")
        return cmdStats(argc, argv);
    if (command == "index")
        return cmdIndex(argc, argv);
    if (command == "shard")
        return cmdShard(argc, argv);
    if (command == "map")
        return cmdMap(argc, argv);
    if (command == "build")
        return cmdBuild(argc, argv);
    if (command == "layout")
        return cmdLayout(argc, argv);
    if (command == "split")
        return cmdSplit(argc, argv);
    if (command == "deconstruct")
        return cmdDeconstruct(argc, argv);
    if (command == "serve")
        return cmdServe(argc, argv);
    if (command == "loadgen")
        return cmdLoadgen(argc, argv);
    if (command == "ctl")
        return cmdCtl(argc, argv);
    if (command == "fault-sites")
        return cmdFaultSites(argc, argv);
    return usage();
}

/**
 * Emit the end-of-run observability artifacts. Writes go through
 * CheckedWriter, so an unwritable path or full disk fails the whole
 * run (exit 1, no partial file) even though the command succeeded —
 * a silently missing metrics file would defeat its purpose.
 */
void
writeObservability(const std::string &metrics_path,
                   const std::string &trace_path)
{
    const char *env = std::getenv("PGB_METRICS");
    const bool summarize = env != nullptr && *env != '\0' &&
                           std::strcmp(env, "0") != 0;
    if (!metrics_path.empty() || summarize) {
        // Force SIMD detection so align.simd_level reports the level
        // the run would dispatch to, even if no kernel actually ran.
        align::activeSimdLevel();
        const obs::Report report = obs::Report::collect();
        if (!metrics_path.empty()) {
            core::CheckedWriter out(metrics_path);
            report.write(out);
            out.finish();
        }
        if (summarize)
            std::fprintf(stderr, "%s\n", report.summaryLine().c_str());
    }
    if (!trace_path.empty()) {
        core::CheckedWriter out(trace_path);
        obs::writeTrace(out);
        out.finish();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip the global observability options before subcommand
    // dispatch so every subcommand accepts them uniformly.
    std::string command = argc > 1 ? argv[1] : "";
    try {
        std::string metrics_path;
        std::string trace_path;
        std::vector<char *> args;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--metrics" || arg == "--trace") {
                if (i + 1 >= argc)
                    core::fatal(arg, ": missing output path");
                (arg == "--metrics" ? metrics_path
                                    : trace_path) = argv[++i];
                continue;
            }
            args.push_back(argv[i]);
        }
        if (args.empty())
            return usage();
        command = args[0];
        if (!trace_path.empty())
            obs::enableTracing(true);
        const int rc = dispatch(command,
                                static_cast<int>(args.size()) - 1,
                                args.data() + 1);
        if (rc == 0)
            writeObservability(metrics_path, trace_path);
        return rc;
    } catch (const std::exception &error) {
        std::fprintf(stderr, "pgb %s: %s\n", command.c_str(),
                     error.what());
        return 1;
    } catch (...) {
        std::fprintf(stderr, "pgb %s: unknown error\n", command.c_str());
        return 1;
    }
}
